//! Explicit-SIMD kernel tier with runtime dispatch.
//!
//! Every hot inner loop in the tensor crate funnels through this module:
//! the dense/sparse `axpy`/`axpy4`/`dot` reductions, the row-wise
//! softmax / log-softmax / entropy kernels, the elementwise arms used by
//! the loss hook and reliability refresh, and the int8 dequantization
//! path of the serving artifacts. Each kernel exists in up to three
//! tiers:
//!
//! * **`Scalar`** — the original autovectorized kernels, moved here
//!   verbatim from `matrix.rs` (see [`scalar`]). They are the *bitwise
//!   oracle*: `RDD_SIMD=off` selects exactly this code, so the pre-SIMD
//!   numerics are always reachable and comparable.
//! * **`Sse2`** — `std::arch` x86-64 SSE2 intrinsics that replicate the
//!   scalar expression trees lane-for-lane. Kernels whose scalar op
//!   order a 4-lane rewrite would have to change (sequential-sum
//!   reductions like `row_entropy` and the softmax backward dot) simply
//!   delegate to [`scalar`], so the SSE2 tier is bitwise-identical to
//!   `Scalar` on every kernel (the property tests in
//!   `tests/simd_equivalence.rs` pin this down).
//! * **`Avx2`** — AVX2 + FMA. Fused multiply-adds reassociate the
//!   reductions and the transcendental kernels use Cephes-style
//!   polynomial vector `exp`/`ln`, so this tier is *bounded-ULP*
//!   equivalent rather than bitwise (again pinned by property tests).
//!
//! # Tier selection
//!
//! The active tier latches once per process from `RDD_SIMD` (same
//! pattern as `RDD_WORKSPACE` / `RDD_THREADS`):
//!
//! * unset / `auto` / `on` — best tier the CPU supports, probed with
//!   `is_x86_feature_detected!`;
//! * `off` / `scalar` / `0` / `false` / `no` — the scalar oracle;
//! * `sse2` / `avx2` — force a specific tier (falls back to the best
//!   detected tier, with a warning, when the CPU lacks it);
//! * anything else — warning through `rdd_obs`, keeps `auto`.
//!
//! The first resolution emits a one-shot `simd_init` trace event naming
//! the selected and detected tiers. Benches and tests that must compare
//! tiers inside one process bypass the latch with [`force_active`], or
//! call the per-tier kernels directly (every public kernel takes its
//! [`SimdTier`] as the first argument).

use std::sync::atomic::{AtomicU8, Ordering};

/// One instruction-set tier of the kernel layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SimdTier {
    /// The original autovectorized scalar kernels (the bitwise oracle).
    Scalar = 0,
    /// SSE2 intrinsics preserving the scalar op order (bitwise-equal).
    Sse2 = 1,
    /// AVX2 + FMA intrinsics (bounded-ULP equivalent, fastest).
    Avx2 = 2,
}

impl SimdTier {
    /// Stable lowercase name, as accepted by `RDD_SIMD` and reported in
    /// the `simd_init` trace event.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }
}

const TIER_UNSET: u8 = u8::MAX;

/// Latched active tier; `TIER_UNSET` until the first [`active`] call.
static ACTIVE: AtomicU8 = AtomicU8::new(TIER_UNSET);

fn tier_from_u8(v: u8) -> SimdTier {
    match v {
        1 => SimdTier::Sse2,
        2 => SimdTier::Avx2,
        _ => SimdTier::Scalar,
    }
}

/// Best tier the running CPU supports.
pub fn detect_best() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdTier::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return SimdTier::Sse2;
        }
    }
    SimdTier::Scalar
}

/// Whether `tier` can run on this CPU.
pub fn available(tier: SimdTier) -> bool {
    tier as u8 <= detect_best() as u8
}

/// The process-wide active tier, resolved from `RDD_SIMD` on first use.
#[inline]
pub fn active() -> SimdTier {
    match ACTIVE.load(Ordering::Relaxed) {
        TIER_UNSET => init_from_env(),
        t => tier_from_u8(t),
    }
}

/// Override the active tier (benches and tier-comparison tests only —
/// normal code lets the `RDD_SIMD` latch decide once per process).
pub fn force_active(tier: SimdTier) {
    ACTIVE.store(tier as u8, Ordering::Relaxed);
}

#[cold]
fn init_from_env() -> SimdTier {
    let best = detect_best();
    let tier = rdd_obs::env::parse_with("RDD_SIMD", "auto|off|scalar|sse2|avx2", |v| {
        match v.trim().to_ascii_lowercase().as_str() {
            "" | "auto" | "on" => Some(best),
            "off" | "scalar" | "0" | "false" | "no" => Some(SimdTier::Scalar),
            "sse2" if available(SimdTier::Sse2) => Some(SimdTier::Sse2),
            "avx2" if available(SimdTier::Avx2) => Some(SimdTier::Avx2),
            "sse2" | "avx2" => {
                // Valid name, unsupported CPU: its own warning (the value
                // parsed fine; the hardware is the problem), then fall
                // back to the detected best tier.
                rdd_obs::env::reject(
                    "RDD_SIMD",
                    v,
                    &format!("a tier this CPU supports (best: {})", best.name()),
                );
                Some(best)
            }
            _ => None,
        }
    })
    .unwrap_or(best);
    // First writer wins so the init event fires exactly once even when
    // several pool workers race into the latch.
    if ACTIVE
        .compare_exchange(TIER_UNSET, tier as u8, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        rdd_obs::event(
            "simd_init",
            &[
                ("tier", rdd_obs::Json::from(tier.name())),
                ("detected", rdd_obs::Json::from(best.name())),
            ],
        );
    }
    tier_from_u8(ACTIVE.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Dispatchers: one public function per kernel, tier as the first argument.
// ---------------------------------------------------------------------------

/// Slices narrower than one AVX2 vector (8 lanes) always take the scalar
/// tier: at such widths the vector path is all setup and masked remainder
/// (measured ~0.9x on 7-class softmax/backward rows), and demoting to the
/// bitwise oracle can never change results.
const NARROW: usize = 8;

macro_rules! dispatch {
    ($tier:expr, $scalar:expr, $sse2:expr, $avx2:expr) => {
        match $tier {
            SimdTier::Scalar => $scalar,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => unsafe { $sse2 },
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => unsafe { $avx2 },
            #[cfg(not(target_arch = "x86_64"))]
            _ => $scalar,
        }
    };
}

/// Dot product (eight-accumulator reduction; bitwise across Scalar/Sse2).
#[inline]
pub fn dot(tier: SimdTier, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < NARROW {
        return scalar::dot(a, b);
    }
    dispatch!(
        tier,
        scalar::dot(a, b),
        x86::dot_sse2(a, b),
        x86::dot_avx2(a, b)
    )
}

/// `out_row += a * b_row` (bitwise across Scalar/Sse2).
#[inline]
pub fn axpy(tier: SimdTier, out_row: &mut [f32], a: f32, b_row: &[f32]) {
    if out_row.len() < NARROW {
        return scalar::axpy(out_row, a, b_row);
    }
    dispatch!(
        tier,
        scalar::axpy(out_row, a, b_row),
        x86::axpy_sse2(out_row, a, b_row),
        x86::axpy_avx2(out_row, a, b_row)
    )
}

/// `out_row += Σ_l a[l] * b_l` over four unrolled reduction rows
/// (bitwise across Scalar/Sse2).
#[inline]
pub fn axpy4(
    tier: SimdTier,
    out_row: &mut [f32],
    a: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    if out_row.len() < NARROW {
        return scalar::axpy4(out_row, a, b0, b1, b2, b3);
    }
    dispatch!(
        tier,
        scalar::axpy4(out_row, a, b0, b1, b2, b3),
        x86::axpy4_sse2(out_row, a, b0, b1, b2, b3),
        x86::axpy4_avx2(out_row, a, b0, b1, b2, b3)
    )
}

/// Numerically-stable in-place softmax (bitwise across Scalar/Sse2).
#[inline]
pub fn softmax_in_place(tier: SimdTier, row: &mut [f32]) {
    if row.len() < NARROW {
        return scalar::softmax_in_place(row);
    }
    dispatch!(
        tier,
        scalar::softmax_in_place(row),
        x86::softmax_sse2(row),
        x86::softmax_avx2(row)
    )
}

/// Numerically-stable in-place log-softmax (bitwise across Scalar/Sse2).
#[inline]
pub fn log_softmax_in_place(tier: SimdTier, row: &mut [f32]) {
    if row.len() < NARROW {
        return scalar::log_softmax_in_place(row);
    }
    dispatch!(
        tier,
        scalar::log_softmax_in_place(row),
        x86::log_softmax_sse2(row),
        x86::log_softmax_avx2(row)
    )
}

/// Shannon entropy of one row (`Σ −p ln p` over `p > 0`). The scalar sum
/// is sequential, so the SSE2 tier delegates to it (bitwise); AVX2 uses
/// the polynomial vector `ln` (bounded-ULP).
#[inline]
pub fn row_entropy(tier: SimdTier, row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 && row.len() >= NARROW {
        return unsafe { x86::row_entropy_avx2(row) };
    }
    let _ = tier;
    scalar::row_entropy(row)
}

/// Elementwise `a += b` (bitwise across Scalar/Sse2).
#[inline]
pub fn add_assign(tier: SimdTier, a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < NARROW {
        return scalar::add_assign(a, b);
    }
    dispatch!(
        tier,
        scalar::add_assign(a, b),
        x86::add_assign_sse2(a, b),
        x86::add_assign_avx2(a, b)
    )
}

/// Elementwise `a += s * b` (bitwise across Scalar/Sse2).
#[inline]
pub fn add_scaled_assign(tier: SimdTier, a: &mut [f32], b: &[f32], s: f32) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < NARROW {
        return scalar::add_scaled_assign(a, b, s);
    }
    dispatch!(
        tier,
        scalar::add_scaled_assign(a, b, s),
        x86::add_scaled_sse2(a, b, s),
        x86::add_scaled_avx2(a, b, s)
    )
}

/// Elementwise `a *= s` (bitwise across Scalar/Sse2).
#[inline]
pub fn scale_assign(tier: SimdTier, a: &mut [f32], s: f32) {
    if a.len() < NARROW {
        return scalar::scale_assign(a, s);
    }
    dispatch!(
        tier,
        scalar::scale_assign(a, s),
        x86::scale_sse2(a, s),
        x86::scale_avx2(a, s)
    )
}

/// Elementwise `a *= b` (Hadamard / dropout-mask arm; bitwise across
/// Scalar/Sse2).
#[inline]
pub fn mul_assign(tier: SimdTier, a: &mut [f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    if a.len() < NARROW {
        return scalar::mul_assign(a, b);
    }
    dispatch!(
        tier,
        scalar::mul_assign(a, b),
        x86::mul_assign_sse2(a, b),
        x86::mul_assign_avx2(a, b)
    )
}

/// In-place ReLU `v = max(v, 0)` (bitwise across Scalar/Sse2 for inputs
/// without `-0.0`/NaN).
#[inline]
pub fn relu_in_place(tier: SimdTier, a: &mut [f32]) {
    if a.len() < NARROW {
        return scalar::relu_in_place(a);
    }
    dispatch!(
        tier,
        scalar::relu_in_place(a),
        x86::relu_sse2(a),
        x86::relu_avx2(a)
    )
}

/// ReLU backward: zero `d` wherever the forward input `x <= 0` (bitwise
/// across Scalar/Sse2 for non-NaN inputs).
#[inline]
pub fn relu_bwd(tier: SimdTier, d: &mut [f32], x: &[f32]) {
    debug_assert_eq!(d.len(), x.len());
    if d.len() < NARROW {
        return scalar::relu_bwd(d, x);
    }
    dispatch!(
        tier,
        scalar::relu_bwd(d, x),
        x86::relu_bwd_sse2(d, x),
        x86::relu_bwd_avx2(d, x)
    )
}

/// Softmax backward over one row: `dx = y ⊙ (dx − Σ dx·y)`. The row dot
/// is a sequential scalar sum, so SSE2 delegates to scalar (bitwise);
/// AVX2 vectorizes both passes (bounded-ULP).
#[inline]
pub fn softmax_bwd_row(tier: SimdTier, dx: &mut [f32], y: &[f32]) {
    debug_assert_eq!(dx.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 && dx.len() >= NARROW {
        return unsafe { x86::softmax_bwd_row_avx2(dx, y) };
    }
    let _ = tier;
    scalar::softmax_bwd_row(dx, y)
}

/// Log-softmax backward over one row: `dx -= exp(y) * Σ dx`. SSE2
/// delegates to scalar (sequential sum + scalar `exp`); AVX2 uses the
/// polynomial vector `exp` (bounded-ULP).
#[inline]
pub fn log_softmax_bwd_row(tier: SimdTier, dx: &mut [f32], y: &[f32]) {
    debug_assert_eq!(dx.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 && dx.len() >= NARROW {
        return unsafe { x86::log_softmax_bwd_row_avx2(dx, y) };
    }
    let _ = tier;
    scalar::log_softmax_bwd_row(dx, y)
}

/// Affine int8 dequantization `out[i] = zero + scale * q[i]` (the v2q
/// serving-artifact load path). SSE2 delegates to scalar; AVX2 widens
/// eight codes per step through `cvtepu8` + FMA (≤1 ULP from scalar).
#[inline]
pub fn dequant_u8(tier: SimdTier, q: &[u8], scale: f32, zero: f32, out: &mut [f32]) {
    debug_assert_eq!(q.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if tier == SimdTier::Avx2 && q.len() >= NARROW {
        return unsafe { x86::dequant_u8_avx2(q, scale, zero, out) };
    }
    let _ = tier;
    scalar::dequant_u8(q, scale, zero, out)
}

// ---------------------------------------------------------------------------
// Scalar tier: the bitwise oracle.
// ---------------------------------------------------------------------------

/// The original scalar kernels, moved verbatim from `matrix.rs` (plus the
/// per-row backward/dequant loops from `autograd.rs` and the serve crate).
/// `RDD_SIMD=off` routes every kernel here, and the property tests use
/// these as the reference the vector tiers are checked against.
pub mod scalar {
    /// `out_row[..] += Σ_l a[l] * b_l[..]` over four unrolled reduction rows.
    ///
    /// The explicit re-slicing to `out_row.len()` lets the compiler drop
    /// bounds checks and vectorize the body; the zero test skips entire
    /// quads, which matters for the sparse-ish dense matrices the ablation
    /// benches feed in.
    #[inline]
    pub fn axpy4(out_row: &mut [f32], a: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
        if a == [0.0; 4] {
            return;
        }
        let n = out_row.len();
        let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
        for i in 0..n {
            out_row[i] += a[0] * b0[i] + a[1] * b1[i] + a[2] * b2[i] + a[3] * b3[i];
        }
    }

    /// `out_row[..] += a * b_row[..]` (remainder lane of the unrolled loops,
    /// and the scatter step of the sparse kernels).
    #[inline]
    pub fn axpy(out_row: &mut [f32], a: f32, b_row: &[f32]) {
        if a == 0.0 {
            return;
        }
        for (o, &b) in out_row.iter_mut().zip(b_row) {
            *o += a * b;
        }
    }

    /// Dot product with eight independent accumulator lanes.
    ///
    /// The lanes break the loop-carried `f32` addition chain, which is what
    /// allows SIMD codegen without `-ffast-math`-style reassociation.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let lanes = a.len() / 8 * 8;
        let (a8, a_tail) = a.split_at(lanes);
        let (b8, b_tail) = b.split_at(lanes);
        let mut acc = [0.0f32; 8];
        for (ac, bc) in a8.chunks_exact(8).zip(b8.chunks_exact(8)) {
            for l in 0..8 {
                acc[l] += ac[l] * bc[l];
            }
        }
        let mut s =
            ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
        for (&x, &y) in a_tail.iter().zip(b_tail) {
            s += x * y;
        }
        s
    }

    /// Numerically-stable in-place softmax over a slice.
    pub fn softmax_in_place(row: &mut [f32]) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }

    /// Numerically-stable in-place log-softmax over a slice.
    pub fn log_softmax_in_place(row: &mut [f32]) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let z: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        let lz = z.ln() + max;
        for v in row.iter_mut() {
            *v -= lz;
        }
    }

    /// Shannon entropy of one row: `Σ −p ln p` over entries `p > 0`.
    pub fn row_entropy(row: &[f32]) -> f32 {
        row.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum()
    }

    /// Elementwise `a += b`.
    #[inline]
    pub fn add_assign(a: &mut [f32], b: &[f32]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x += y;
        }
    }

    /// Elementwise `a += s * b`.
    #[inline]
    pub fn add_scaled_assign(a: &mut [f32], b: &[f32], s: f32) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x += s * y;
        }
    }

    /// Elementwise `a *= s`.
    #[inline]
    pub fn scale_assign(a: &mut [f32], s: f32) {
        for x in a.iter_mut() {
            *x *= s;
        }
    }

    /// Elementwise `a *= b`.
    #[inline]
    pub fn mul_assign(a: &mut [f32], b: &[f32]) {
        for (x, &y) in a.iter_mut().zip(b) {
            *x *= y;
        }
    }

    /// In-place ReLU.
    #[inline]
    pub fn relu_in_place(a: &mut [f32]) {
        for v in a.iter_mut() {
            *v = v.max(0.0);
        }
    }

    /// ReLU backward: zero the gradient wherever the input was `<= 0`.
    #[inline]
    pub fn relu_bwd(d: &mut [f32], x: &[f32]) {
        for (dv, &v) in d.iter_mut().zip(x) {
            if v <= 0.0 {
                *dv = 0.0;
            }
        }
    }

    /// Softmax backward over one row: `dx = y ⊙ (dx − Σ dx·y)`.
    #[inline]
    pub fn softmax_bwd_row(dx: &mut [f32], y: &[f32]) {
        let dot: f32 = dx.iter().zip(y).map(|(&a, &b)| a * b).sum();
        for (d, &yv) in dx.iter_mut().zip(y) {
            *d = yv * (*d - dot);
        }
    }

    /// Log-softmax backward over one row: `dx -= exp(y) * Σ dx`.
    #[inline]
    pub fn log_softmax_bwd_row(dx: &mut [f32], y: &[f32]) {
        let row_sum: f32 = dx.iter().sum();
        for (d, &ly) in dx.iter_mut().zip(y) {
            *d -= ly.exp() * row_sum;
        }
    }

    /// Affine int8 dequantization `out[i] = zero + scale * q[i]`.
    #[inline]
    pub fn dequant_u8(q: &[u8], scale: f32, zero: f32, out: &mut [f32]) {
        for (o, &qv) in out.iter_mut().zip(q) {
            *o = zero + scale * qv as f32;
        }
    }
}

// ---------------------------------------------------------------------------
// x86-64 vector tiers.
// ---------------------------------------------------------------------------

/// SSE2 and AVX2+FMA kernel implementations. All functions are
/// `#[target_feature]`-gated: callers must have verified the feature via
/// [`detect_best`] (the dispatchers and the `RDD_SIMD` latch do).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_op_in_unsafe_fn)]
mod x86 {
    use std::arch::x86_64::*;

    // -------------------------- SSE2 (bitwise) ---------------------------
    //
    // These kernels replicate the scalar expression trees lane-for-lane:
    // the 8-lane `dot` maps onto two 4-lane accumulators whose combine
    // order equals the scalar lane combine, and the elementwise kernels
    // perform the identical per-element product/sum. They are therefore
    // bitwise-equal to the `scalar` module on finite inputs.

    #[target_feature(enable = "sse2")]
    pub unsafe fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let lanes = n / 8 * 8;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        // acc_lo holds scalar lanes 0..4, acc_hi lanes 4..8.
        let mut acc_lo = _mm_setzero_ps();
        let mut acc_hi = _mm_setzero_ps();
        let mut i = 0;
        while i < lanes {
            acc_lo = _mm_add_ps(
                acc_lo,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i))),
            );
            acc_hi = _mm_add_ps(
                acc_hi,
                _mm_mul_ps(_mm_loadu_ps(pa.add(i + 4)), _mm_loadu_ps(pb.add(i + 4))),
            );
            i += 8;
        }
        // Combine in the scalar order:
        // ((l0+h0) + (l1+h1)) + ((l2+h2) + (l3+h3)).
        let v = _mm_add_ps(acc_lo, acc_hi);
        let mut lanes4 = [0.0f32; 4];
        _mm_storeu_ps(lanes4.as_mut_ptr(), v);
        let mut s = (lanes4[0] + lanes4[1]) + (lanes4[2] + lanes4[3]);
        for k in lanes..n {
            s += a[k] * b[k];
        }
        s
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn axpy_sse2(out_row: &mut [f32], a: f32, b_row: &[f32]) {
        if a == 0.0 {
            return;
        }
        let n = out_row.len().min(b_row.len());
        let quads = n / 4 * 4;
        let va = _mm_set1_ps(a);
        let po = out_row.as_mut_ptr();
        let pb = b_row.as_ptr();
        let mut i = 0;
        while i < quads {
            let o = _mm_loadu_ps(po.add(i));
            let bch = _mm_loadu_ps(pb.add(i));
            _mm_storeu_ps(po.add(i), _mm_add_ps(o, _mm_mul_ps(va, bch)));
            i += 4;
        }
        for k in quads..n {
            out_row[k] += a * b_row[k];
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn axpy4_sse2(
        out_row: &mut [f32],
        a: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        if a == [0.0; 4] {
            return;
        }
        let n = out_row.len();
        let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
        let (va0, va1, va2, va3) = (
            _mm_set1_ps(a[0]),
            _mm_set1_ps(a[1]),
            _mm_set1_ps(a[2]),
            _mm_set1_ps(a[3]),
        );
        let quads = n / 4 * 4;
        let po = out_row.as_mut_ptr();
        let mut i = 0;
        while i < quads {
            // Same tree as the scalar kernel: ((m0 + m1) + m2) + m3.
            let t = _mm_add_ps(
                _mm_mul_ps(va0, _mm_loadu_ps(b0.as_ptr().add(i))),
                _mm_mul_ps(va1, _mm_loadu_ps(b1.as_ptr().add(i))),
            );
            let t = _mm_add_ps(t, _mm_mul_ps(va2, _mm_loadu_ps(b2.as_ptr().add(i))));
            let t = _mm_add_ps(t, _mm_mul_ps(va3, _mm_loadu_ps(b3.as_ptr().add(i))));
            _mm_storeu_ps(po.add(i), _mm_add_ps(_mm_loadu_ps(po.add(i)), t));
            i += 4;
        }
        for k in quads..n {
            out_row[k] += a[0] * b0[k] + a[1] * b1[k] + a[2] * b2[k] + a[3] * b3[k];
        }
    }

    #[target_feature(enable = "sse2")]
    unsafe fn max_sse2(row: &[f32]) -> f32 {
        let n = row.len();
        let quads = n / 4 * 4;
        let mut max = f32::NEG_INFINITY;
        if quads >= 4 {
            let mut vm = _mm_loadu_ps(row.as_ptr());
            let mut i = 4;
            while i < quads {
                vm = _mm_max_ps(vm, _mm_loadu_ps(row.as_ptr().add(i)));
                i += 4;
            }
            let mut lanes = [0.0f32; 4];
            _mm_storeu_ps(lanes.as_mut_ptr(), vm);
            max = lanes.iter().cloned().fold(max, f32::max);
        }
        for &v in &row[quads..] {
            max = max.max(v);
        }
        max
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn softmax_sse2(row: &mut [f32]) {
        // Vector max (order-free), scalar exp + sequential sum so `z` is
        // bitwise-equal to the scalar kernel, then a vector scale pass.
        let max = max_sse2(row);
        let mut z = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        let n = row.len();
        let quads = n / 4 * 4;
        let vi = _mm_set1_ps(inv);
        let p = row.as_mut_ptr();
        let mut i = 0;
        while i < quads {
            _mm_storeu_ps(p.add(i), _mm_mul_ps(_mm_loadu_ps(p.add(i)), vi));
            i += 4;
        }
        for v in &mut row[quads..] {
            *v *= inv;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn log_softmax_sse2(row: &mut [f32]) {
        let max = max_sse2(row);
        let mut z = 0.0f32;
        for &v in row.iter() {
            z += (v - max).exp();
        }
        let lz = z.ln() + max;
        let n = row.len();
        let quads = n / 4 * 4;
        let vlz = _mm_set1_ps(lz);
        let p = row.as_mut_ptr();
        let mut i = 0;
        while i < quads {
            _mm_storeu_ps(p.add(i), _mm_sub_ps(_mm_loadu_ps(p.add(i)), vlz));
            i += 4;
        }
        for v in &mut row[quads..] {
            *v -= lz;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn add_assign_sse2(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let quads = n / 4 * 4;
        let pa = a.as_mut_ptr();
        let pb = b.as_ptr();
        let mut i = 0;
        while i < quads {
            _mm_storeu_ps(
                pa.add(i),
                _mm_add_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i))),
            );
            i += 4;
        }
        for k in quads..n {
            a[k] += b[k];
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn add_scaled_sse2(a: &mut [f32], b: &[f32], s: f32) {
        let n = a.len();
        let quads = n / 4 * 4;
        let vs = _mm_set1_ps(s);
        let pa = a.as_mut_ptr();
        let pb = b.as_ptr();
        let mut i = 0;
        while i < quads {
            _mm_storeu_ps(
                pa.add(i),
                _mm_add_ps(
                    _mm_loadu_ps(pa.add(i)),
                    _mm_mul_ps(vs, _mm_loadu_ps(pb.add(i))),
                ),
            );
            i += 4;
        }
        for k in quads..n {
            a[k] += s * b[k];
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn scale_sse2(a: &mut [f32], s: f32) {
        let n = a.len();
        let quads = n / 4 * 4;
        let vs = _mm_set1_ps(s);
        let pa = a.as_mut_ptr();
        let mut i = 0;
        while i < quads {
            _mm_storeu_ps(pa.add(i), _mm_mul_ps(_mm_loadu_ps(pa.add(i)), vs));
            i += 4;
        }
        for v in &mut a[quads..n] {
            *v *= s;
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn mul_assign_sse2(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let quads = n / 4 * 4;
        let pa = a.as_mut_ptr();
        let pb = b.as_ptr();
        let mut i = 0;
        while i < quads {
            _mm_storeu_ps(
                pa.add(i),
                _mm_mul_ps(_mm_loadu_ps(pa.add(i)), _mm_loadu_ps(pb.add(i))),
            );
            i += 4;
        }
        for k in quads..n {
            a[k] *= b[k];
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn relu_sse2(a: &mut [f32]) {
        let n = a.len();
        let quads = n / 4 * 4;
        let zero = _mm_setzero_ps();
        let pa = a.as_mut_ptr();
        let mut i = 0;
        while i < quads {
            _mm_storeu_ps(pa.add(i), _mm_max_ps(_mm_loadu_ps(pa.add(i)), zero));
            i += 4;
        }
        for v in &mut a[quads..] {
            *v = v.max(0.0);
        }
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn relu_bwd_sse2(d: &mut [f32], x: &[f32]) {
        let n = d.len();
        let quads = n / 4 * 4;
        let zero = _mm_setzero_ps();
        let pd = d.as_mut_ptr();
        let px = x.as_ptr();
        let mut i = 0;
        while i < quads {
            // Keep the gradient only where x > 0.
            let keep = _mm_cmpgt_ps(_mm_loadu_ps(px.add(i)), zero);
            _mm_storeu_ps(pd.add(i), _mm_and_ps(_mm_loadu_ps(pd.add(i)), keep));
            i += 4;
        }
        for k in quads..n {
            if x[k] <= 0.0 {
                d[k] = 0.0;
            }
        }
    }

    // ------------------------- AVX2 + FMA (ULP) --------------------------

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
        let s = _mm_add_ps(s, _mm_shuffle_ps(s, s, 0b10_11_00_01));
        let s = _mm_add_ss(s, _mm_movehl_ps(s, s));
        _mm_cvtss_f32(s)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let pairs = n / 16 * 16;
        let mut i = 0;
        while i < pairs {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(i + 8)),
                _mm256_loadu_ps(pb.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        let mut acc = _mm256_add_ps(acc0, acc1);
        while i + 8 <= n {
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc);
            i += 8;
        }
        let mut s = hsum256(acc);
        while i < n {
            s += a[i] * b[i];
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_avx2(out_row: &mut [f32], a: f32, b_row: &[f32]) {
        if a == 0.0 {
            return;
        }
        let n = out_row.len().min(b_row.len());
        let octs = n / 8 * 8;
        let va = _mm256_set1_ps(a);
        let po = out_row.as_mut_ptr();
        let pb = b_row.as_ptr();
        let mut i = 0;
        while i < octs {
            _mm256_storeu_ps(
                po.add(i),
                _mm256_fmadd_ps(va, _mm256_loadu_ps(pb.add(i)), _mm256_loadu_ps(po.add(i))),
            );
            i += 8;
        }
        for k in octs..n {
            out_row[k] += a * b_row[k];
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy4_avx2(
        out_row: &mut [f32],
        a: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
    ) {
        if a == [0.0; 4] {
            return;
        }
        let n = out_row.len();
        let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
        let (va0, va1, va2, va3) = (
            _mm256_set1_ps(a[0]),
            _mm256_set1_ps(a[1]),
            _mm256_set1_ps(a[2]),
            _mm256_set1_ps(a[3]),
        );
        let octs = n / 8 * 8;
        let po = out_row.as_mut_ptr();
        let mut i = 0;
        while i < octs {
            let mut o = _mm256_loadu_ps(po.add(i));
            o = _mm256_fmadd_ps(va0, _mm256_loadu_ps(b0.as_ptr().add(i)), o);
            o = _mm256_fmadd_ps(va1, _mm256_loadu_ps(b1.as_ptr().add(i)), o);
            o = _mm256_fmadd_ps(va2, _mm256_loadu_ps(b2.as_ptr().add(i)), o);
            o = _mm256_fmadd_ps(va3, _mm256_loadu_ps(b3.as_ptr().add(i)), o);
            _mm256_storeu_ps(po.add(i), o);
            i += 8;
        }
        for k in octs..n {
            out_row[k] += a[0] * b0[k] + a[1] * b1[k] + a[2] * b2[k] + a[3] * b3[k];
        }
    }

    /// Cephes-style polynomial `exp` on 8 lanes (≈1 ULP over the reduced
    /// range; inputs clamped to ±88.376 like the libm fallback region).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn exp256_ps(x: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let x = _mm256_min_ps(
            _mm256_max_ps(x, _mm256_set1_ps(-88.376_26)),
            _mm256_set1_ps(88.376_26),
        );
        // n = floor(x / ln2 + 0.5); r = x - n*ln2 (hi/lo split).
        let fx = _mm256_floor_ps(_mm256_fmadd_ps(
            x,
            _mm256_set1_ps(std::f32::consts::LOG2_E),
            _mm256_set1_ps(0.5),
        ));
        let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693_359_4), x);
        let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.121_944_4e-4), x);
        let z = _mm256_mul_ps(x, x);
        let mut y = _mm256_set1_ps(1.987_569_1e-4);
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.398_199_9e-3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.333_452e-3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.166_579_6e-2));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.666_666_6e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5e-1));
        y = _mm256_fmadd_ps(y, z, x);
        y = _mm256_add_ps(y, one);
        // * 2^n via exponent-field construction.
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvttps_epi32(fx),
            _mm256_set1_epi32(0x7f),
        )));
        _mm256_mul_ps(y, pow2)
    }

    /// Cephes-style polynomial `ln` on 8 lanes. Assumes `x > 0` (callers
    /// mask out non-positive lanes); denormals are clamped up to the
    /// smallest normal before exponent extraction.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn log256_ps(x: __m256) -> __m256 {
        let one = _mm256_set1_ps(1.0);
        let half = _mm256_set1_ps(0.5);
        let x = _mm256_max_ps(x, _mm256_set1_ps(f32::MIN_POSITIVE));
        let emm0 = _mm256_srli_epi32::<23>(_mm256_castps_si256(x));
        // Mantissa into [0.5, 1).
        let x = _mm256_and_ps(
            x,
            _mm256_castsi256_ps(_mm256_set1_epi32(!0x7f80_0000u32 as i32)),
        );
        let x = _mm256_or_ps(x, half);
        let emm0 = _mm256_sub_epi32(emm0, _mm256_set1_epi32(0x7f));
        let e = _mm256_add_ps(_mm256_cvtepi32_ps(emm0), one);
        // If mantissa < 1/sqrt(2): e -= 1, m = 2m - 1; else m -= 1.
        let mask = _mm256_cmp_ps::<_CMP_LT_OQ>(x, _mm256_set1_ps(std::f32::consts::FRAC_1_SQRT_2));
        let tmp = _mm256_and_ps(x, mask);
        let x = _mm256_sub_ps(x, one);
        let e = _mm256_sub_ps(e, _mm256_and_ps(one, mask));
        let x = _mm256_add_ps(x, tmp);
        let z = _mm256_mul_ps(x, x);
        let mut y = _mm256_set1_ps(7.037_683_6e-2);
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.151_461e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.167_699_9e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.242_014_1e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.424_932_3e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.666_805_7e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(2.000_071_4e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-2.499_999_4e-1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(3.333_333e-1));
        y = _mm256_mul_ps(_mm256_mul_ps(y, x), z);
        y = _mm256_fmadd_ps(e, _mm256_set1_ps(-2.121_944_4e-4), y);
        y = _mm256_fnmadd_ps(half, z, y);
        let x = _mm256_add_ps(x, y);
        _mm256_fmadd_ps(e, _mm256_set1_ps(0.693_359_4), x)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn max_avx2(row: &[f32]) -> f32 {
        let n = row.len();
        let octs = n / 8 * 8;
        let mut max = f32::NEG_INFINITY;
        if octs >= 8 {
            let mut vm = _mm256_loadu_ps(row.as_ptr());
            let mut i = 8;
            while i < octs {
                vm = _mm256_max_ps(vm, _mm256_loadu_ps(row.as_ptr().add(i)));
                i += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), vm);
            max = lanes.iter().cloned().fold(max, f32::max);
        }
        for &v in &row[octs..] {
            max = max.max(v);
        }
        max
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn softmax_avx2(row: &mut [f32]) {
        let max = max_avx2(row);
        let n = row.len();
        let octs = n / 8 * 8;
        let vmax = _mm256_set1_ps(max);
        let p = row.as_mut_ptr();
        let mut vz = _mm256_setzero_ps();
        let mut i = 0;
        while i < octs {
            let e = exp256_ps(_mm256_sub_ps(_mm256_loadu_ps(p.add(i)), vmax));
            _mm256_storeu_ps(p.add(i), e);
            vz = _mm256_add_ps(vz, e);
            i += 8;
        }
        let mut z = hsum256(vz);
        for v in &mut row[octs..] {
            *v = (*v - max).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        let vi = _mm256_set1_ps(inv);
        let mut i = 0;
        while i < octs {
            _mm256_storeu_ps(p.add(i), _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), vi));
            i += 8;
        }
        for v in &mut row[octs..] {
            *v *= inv;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn log_softmax_avx2(row: &mut [f32]) {
        let max = max_avx2(row);
        let n = row.len();
        let octs = n / 8 * 8;
        let vmax = _mm256_set1_ps(max);
        let p = row.as_mut_ptr();
        let mut vz = _mm256_setzero_ps();
        let mut i = 0;
        while i < octs {
            vz = _mm256_add_ps(
                vz,
                exp256_ps(_mm256_sub_ps(_mm256_loadu_ps(p.add(i)), vmax)),
            );
            i += 8;
        }
        let mut z = hsum256(vz);
        for &v in &row[octs..] {
            z += (v - max).exp();
        }
        let lz = z.ln() + max;
        let vlz = _mm256_set1_ps(lz);
        let mut i = 0;
        while i < octs {
            _mm256_storeu_ps(p.add(i), _mm256_sub_ps(_mm256_loadu_ps(p.add(i)), vlz));
            i += 8;
        }
        for v in &mut row[octs..] {
            *v -= lz;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn row_entropy_avx2(row: &[f32]) -> f32 {
        let n = row.len();
        let octs = n / 8 * 8;
        let zero = _mm256_setzero_ps();
        let one = _mm256_set1_ps(1.0);
        let mut acc = _mm256_setzero_ps(); // accumulates Σ p·ln p
        let mut i = 0;
        while i < octs {
            let p = _mm256_loadu_ps(row.as_ptr().add(i));
            let pos = _mm256_cmp_ps::<_CMP_GT_OQ>(p, zero);
            // ln on masked-out lanes runs on 1.0 (→ 0), then gets zeroed.
            let safe = _mm256_blendv_ps(one, p, pos);
            let pl = _mm256_and_ps(_mm256_mul_ps(p, log256_ps(safe)), pos);
            acc = _mm256_add_ps(acc, pl);
            i += 8;
        }
        let mut s = -hsum256(acc);
        for &p in &row[octs..] {
            if p > 0.0 {
                s += -p * p.ln();
            }
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn softmax_bwd_row_avx2(dx: &mut [f32], y: &[f32]) {
        let dot = dot_avx2(dx, y);
        let n = dx.len();
        let octs = n / 8 * 8;
        let vd = _mm256_set1_ps(dot);
        let pd = dx.as_mut_ptr();
        let py = y.as_ptr();
        let mut i = 0;
        while i < octs {
            let t = _mm256_sub_ps(_mm256_loadu_ps(pd.add(i)), vd);
            _mm256_storeu_ps(pd.add(i), _mm256_mul_ps(_mm256_loadu_ps(py.add(i)), t));
            i += 8;
        }
        for k in octs..n {
            dx[k] = y[k] * (dx[k] - dot);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn log_softmax_bwd_row_avx2(dx: &mut [f32], y: &[f32]) {
        let n = dx.len();
        let octs = n / 8 * 8;
        let pd = dx.as_mut_ptr();
        let py = y.as_ptr();
        let mut vs = _mm256_setzero_ps();
        let mut i = 0;
        while i < octs {
            vs = _mm256_add_ps(vs, _mm256_loadu_ps(pd.add(i)));
            i += 8;
        }
        let mut row_sum = hsum256(vs);
        for &d in &dx[octs..] {
            row_sum += d;
        }
        let vsum = _mm256_set1_ps(row_sum);
        let mut i = 0;
        while i < octs {
            let e = exp256_ps(_mm256_loadu_ps(py.add(i)));
            _mm256_storeu_ps(
                pd.add(i),
                _mm256_fnmadd_ps(e, vsum, _mm256_loadu_ps(pd.add(i))),
            );
            i += 8;
        }
        for k in octs..n {
            dx[k] -= y[k].exp() * row_sum;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dequant_u8_avx2(q: &[u8], scale: f32, zero: f32, out: &mut [f32]) {
        let n = out.len();
        let octs = n / 8 * 8;
        let vs = _mm256_set1_ps(scale);
        let vz = _mm256_set1_ps(zero);
        let po = out.as_mut_ptr();
        let mut i = 0;
        while i < octs {
            // Widen 8 codes u8 → i32 → f32, then one FMA.
            let q8 = _mm_loadl_epi64(q.as_ptr().add(i) as *const __m128i);
            let qf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(q8));
            _mm256_storeu_ps(po.add(i), _mm256_fmadd_ps(vs, qf, vz));
            i += 8;
        }
        for k in octs..n {
            out[k] = zero + scale * q[k] as f32;
        }
    }

    // AVX2 elementwise arms.

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn add_assign_avx2(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let octs = n / 8 * 8;
        let pa = a.as_mut_ptr();
        let pb = b.as_ptr();
        let mut i = 0;
        while i < octs {
            _mm256_storeu_ps(
                pa.add(i),
                _mm256_add_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i))),
            );
            i += 8;
        }
        for k in octs..n {
            a[k] += b[k];
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn add_scaled_avx2(a: &mut [f32], b: &[f32], s: f32) {
        let n = a.len();
        let octs = n / 8 * 8;
        let vs = _mm256_set1_ps(s);
        let pa = a.as_mut_ptr();
        let pb = b.as_ptr();
        let mut i = 0;
        while i < octs {
            _mm256_storeu_ps(
                pa.add(i),
                _mm256_fmadd_ps(vs, _mm256_loadu_ps(pb.add(i)), _mm256_loadu_ps(pa.add(i))),
            );
            i += 8;
        }
        for k in octs..n {
            a[k] += s * b[k];
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn scale_avx2(a: &mut [f32], s: f32) {
        let n = a.len();
        let octs = n / 8 * 8;
        let vs = _mm256_set1_ps(s);
        let pa = a.as_mut_ptr();
        let mut i = 0;
        while i < octs {
            _mm256_storeu_ps(pa.add(i), _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), vs));
            i += 8;
        }
        for v in &mut a[octs..n] {
            *v *= s;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mul_assign_avx2(a: &mut [f32], b: &[f32]) {
        let n = a.len();
        let octs = n / 8 * 8;
        let pa = a.as_mut_ptr();
        let pb = b.as_ptr();
        let mut i = 0;
        while i < octs {
            _mm256_storeu_ps(
                pa.add(i),
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i))),
            );
            i += 8;
        }
        for k in octs..n {
            a[k] *= b[k];
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn relu_avx2(a: &mut [f32]) {
        let n = a.len();
        let octs = n / 8 * 8;
        let zero = _mm256_setzero_ps();
        let pa = a.as_mut_ptr();
        let mut i = 0;
        while i < octs {
            _mm256_storeu_ps(pa.add(i), _mm256_max_ps(_mm256_loadu_ps(pa.add(i)), zero));
            i += 8;
        }
        for v in &mut a[octs..] {
            *v = v.max(0.0);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn relu_bwd_avx2(d: &mut [f32], x: &[f32]) {
        let n = d.len();
        let octs = n / 8 * 8;
        let zero = _mm256_setzero_ps();
        let pd = d.as_mut_ptr();
        let px = x.as_ptr();
        let mut i = 0;
        while i < octs {
            let keep = _mm256_cmp_ps::<_CMP_GT_OQ>(_mm256_loadu_ps(px.add(i)), zero);
            _mm256_storeu_ps(pd.add(i), _mm256_and_ps(_mm256_loadu_ps(pd.add(i)), keep));
            i += 8;
        }
        for k in octs..n {
            if x[k] <= 0.0 {
                d[k] = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* data generator (offline-friendly: the
    /// full tier matrix is exercised without proptest).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn f32(&mut self) -> f32 {
            (self.next() >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        }

        fn vec(&mut self, n: usize) -> Vec<f32> {
            (0..n).map(|_| self.f32()).collect()
        }
    }

    fn tiers() -> Vec<SimdTier> {
        let mut t = vec![SimdTier::Scalar];
        if available(SimdTier::Sse2) {
            t.push(SimdTier::Sse2);
        }
        if available(SimdTier::Avx2) {
            t.push(SimdTier::Avx2);
        }
        t
    }

    /// Lengths that cover empty, sub-lane, lane-aligned and ragged tails.
    const LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 67];

    fn assert_close(a: f32, b: f32, scale: f32, what: &str) {
        assert!(
            (a - b).abs() <= 1e-5 * scale.max(1.0),
            "{what}: {a} vs {b} (scale {scale})"
        );
    }

    #[test]
    fn sse2_dot_axpy_bitwise_avx2_bounded() {
        let mut rng = Rng(0x1234_5678_9abc_def1);
        for &n in LENS {
            let a = rng.vec(n);
            let b = rng.vec(n);
            let base = scalar::dot(&a, &b);
            for t in tiers() {
                let d = dot(t, &a, &b);
                if t == SimdTier::Sse2 {
                    assert_eq!(d.to_bits(), base.to_bits(), "dot sse2 len {n}");
                } else {
                    let mag: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
                    assert_close(d, base, mag, &format!("dot {} len {n}", t.name()));
                }
            }

            let out0 = rng.vec(n);
            let coef = rng.f32();
            let mut want = out0.clone();
            scalar::axpy(&mut want, coef, &b);
            for t in tiers() {
                let mut got = out0.clone();
                axpy(t, &mut got, coef, &b);
                for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                    if t == SimdTier::Sse2 {
                        assert_eq!(w.to_bits(), g.to_bits(), "axpy sse2 len {n} idx {i}");
                    } else {
                        assert_close(*g, *w, w.abs(), &format!("axpy {} len {n}", t.name()));
                    }
                }
            }
        }
    }

    #[test]
    fn sse2_axpy4_bitwise_avx2_bounded() {
        let mut rng = Rng(0x9e37_79b9_97f4_a7c1);
        for &n in LENS {
            let (b0, b1, b2, b3) = (rng.vec(n), rng.vec(n), rng.vec(n), rng.vec(n));
            for coefs in [
                [rng.f32(), rng.f32(), rng.f32(), rng.f32()],
                [0.0, 0.0, 0.0, 0.0],
                [0.0, rng.f32(), 0.0, rng.f32()],
            ] {
                let out0 = rng.vec(n);
                let mut want = out0.clone();
                scalar::axpy4(&mut want, coefs, &b0, &b1, &b2, &b3);
                for t in tiers() {
                    let mut got = out0.clone();
                    axpy4(t, &mut got, coefs, &b0, &b1, &b2, &b3);
                    for (w, g) in want.iter().zip(&got) {
                        if t == SimdTier::Avx2 {
                            assert_close(*g, *w, w.abs(), &format!("axpy4 avx2 len {n}"));
                        } else {
                            assert_eq!(w.to_bits(), g.to_bits(), "axpy4 {} len {n}", t.name());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn softmax_family_tiers_agree() {
        let mut rng = Rng(0xabcd_ef12_3456_789b);
        for &n in LENS {
            if n == 0 {
                continue; // softmax of an empty row is undefined (z = 0)
            }
            let base: Vec<f32> = (0..n).map(|_| rng.f32() * 8.0).collect();

            let mut want_sm = base.clone();
            scalar::softmax_in_place(&mut want_sm);
            let mut want_lsm = base.clone();
            scalar::log_softmax_in_place(&mut want_lsm);
            let want_ent = scalar::row_entropy(&want_sm);

            for t in tiers() {
                let mut sm = base.clone();
                softmax_in_place(t, &mut sm);
                let mut lsm = base.clone();
                log_softmax_in_place(t, &mut lsm);
                let ent = row_entropy(t, &want_sm);
                if t == SimdTier::Sse2 {
                    for (w, g) in want_sm.iter().zip(&sm) {
                        assert_eq!(w.to_bits(), g.to_bits(), "softmax sse2 len {n}");
                    }
                    for (w, g) in want_lsm.iter().zip(&lsm) {
                        assert_eq!(w.to_bits(), g.to_bits(), "log_softmax sse2 len {n}");
                    }
                    assert_eq!(ent.to_bits(), want_ent.to_bits(), "entropy sse2 len {n}");
                } else {
                    let sum: f32 = sm.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-4, "softmax {} sums {sum}", t.name());
                    for (w, g) in want_sm.iter().zip(&sm) {
                        assert_close(*g, *w, 1.0, &format!("softmax {} len {n}", t.name()));
                    }
                    for (w, g) in want_lsm.iter().zip(&lsm) {
                        assert_close(
                            *g,
                            *w,
                            w.abs(),
                            &format!("log_softmax {} len {n}", t.name()),
                        );
                    }
                    assert_close(ent, want_ent, (n as f32).max(1.0), "entropy avx2");
                }
            }
        }
    }

    #[test]
    fn elementwise_tiers_agree() {
        let mut rng = Rng(0x0123_4567_89ab_cdef);
        for &n in LENS {
            let a0 = rng.vec(n);
            let b = rng.vec(n);
            let s = rng.f32();
            for t in tiers() {
                let bitwise = t != SimdTier::Avx2;

                let mut want = a0.clone();
                scalar::add_assign(&mut want, &b);
                let mut got = a0.clone();
                add_assign(t, &mut got, &b);
                check(
                    &want,
                    &got,
                    bitwise || t == SimdTier::Avx2,
                    "add_assign",
                    t,
                    n,
                );

                let mut want = a0.clone();
                scalar::add_scaled_assign(&mut want, &b, s);
                let mut got = a0.clone();
                add_scaled_assign(t, &mut got, &b, s);
                check(&want, &got, bitwise, "add_scaled_assign", t, n);

                let mut want = a0.clone();
                scalar::scale_assign(&mut want, s);
                let mut got = a0.clone();
                scale_assign(t, &mut got, s);
                check(&want, &got, true, "scale_assign", t, n);

                let mut want = a0.clone();
                scalar::mul_assign(&mut want, &b);
                let mut got = a0.clone();
                mul_assign(t, &mut got, &b);
                check(&want, &got, true, "mul_assign", t, n);

                let mut want = a0.clone();
                scalar::relu_in_place(&mut want);
                let mut got = a0.clone();
                relu_in_place(t, &mut got);
                check(&want, &got, true, "relu", t, n);

                let mut want = b.clone();
                scalar::relu_bwd(&mut want, &a0);
                let mut got = b.clone();
                relu_bwd(t, &mut got, &a0);
                check(&want, &got, true, "relu_bwd", t, n);
            }
        }

        fn check(want: &[f32], got: &[f32], bitwise: bool, what: &str, t: SimdTier, n: usize) {
            for (w, g) in want.iter().zip(got) {
                if bitwise {
                    assert_eq!(w.to_bits(), g.to_bits(), "{what} {} len {n}", t.name());
                } else {
                    assert_close(*g, *w, w.abs(), &format!("{what} {} len {n}", t.name()));
                }
            }
        }
    }

    #[test]
    fn backward_rows_and_dequant_tiers_agree() {
        let mut rng = Rng(0xfeed_face_dead_beef);
        for &n in LENS {
            if n == 0 {
                continue;
            }
            let mut y: Vec<f32> = rng.vec(n);
            scalar::softmax_in_place(&mut y);
            let g0 = rng.vec(n);

            let mut want = g0.clone();
            scalar::softmax_bwd_row(&mut want, &y);
            for t in tiers() {
                let mut got = g0.clone();
                softmax_bwd_row(t, &mut got, &y);
                for (w, g) in want.iter().zip(&got) {
                    if t == SimdTier::Avx2 {
                        assert_close(*g, *w, 1.0, &format!("softmax_bwd avx2 len {n}"));
                    } else {
                        assert_eq!(w.to_bits(), g.to_bits(), "softmax_bwd {} len {n}", t.name());
                    }
                }
            }

            let mut ly = y.clone();
            for v in &mut ly {
                *v = v.max(1e-9).ln();
            }
            let mut want = g0.clone();
            scalar::log_softmax_bwd_row(&mut want, &ly);
            for t in tiers() {
                let mut got = g0.clone();
                log_softmax_bwd_row(t, &mut got, &ly);
                for (w, g) in want.iter().zip(&got) {
                    if t == SimdTier::Avx2 {
                        assert_close(*g, *w, w.abs().max(1.0), "log_softmax_bwd avx2");
                    } else {
                        assert_eq!(w.to_bits(), g.to_bits(), "lsm_bwd {} len {n}", t.name());
                    }
                }
            }

            let q: Vec<u8> = (0..n).map(|_| (rng.next() & 0xff) as u8).collect();
            let (scale, zero) = (rng.f32().abs() * 0.01, rng.f32());
            let mut want = vec![0.0f32; n];
            scalar::dequant_u8(&q, scale, zero, &mut want);
            for t in tiers() {
                let mut got = vec![0.0f32; n];
                dequant_u8(t, &q, scale, zero, &mut got);
                for (w, g) in want.iter().zip(&got) {
                    if t == SimdTier::Avx2 {
                        // FMA skips the product rounding, so the two paths
                        // differ by at most one rounding of the *operands*
                        // (which can be many ULP of a cancelled result).
                        let bound = (zero.abs() + scale * 255.0) * f32::EPSILON;
                        assert!((w - g).abs() <= bound, "dequant avx2: {w} vs {g}");
                    } else {
                        assert_eq!(w.to_bits(), g.to_bits(), "dequant {} len {n}", t.name());
                    }
                }
            }
        }
    }

    #[test]
    fn avx2_exp_ln_follow_libm() {
        if !available(SimdTier::Avx2) {
            return;
        }
        // softmax/log_softmax at width 8 exercise exp256 directly; entropy
        // at width 8 exercises log256. Compare against libm across a range
        // of magnitudes, including the clamp region.
        let xs: Vec<f32> = (-40..=40).map(|i| i as f32 * 2.3).collect();
        for w in xs.chunks(8) {
            if w.len() < 8 {
                continue;
            }
            let mut row = w.to_vec();
            row.push(0.0); // force a tail so both paths run
            let mut want = row.clone();
            scalar::log_softmax_in_place(&mut want);
            log_softmax_in_place(SimdTier::Avx2, &mut row);
            for (a, b) in want.iter().zip(&row) {
                assert_close(*b, *a, a.abs().max(1.0), "exp256 via log_softmax");
            }
        }
        let ps: Vec<f32> = (1..=64).map(|i| i as f32 / 64.0).collect();
        for w in ps.chunks(8) {
            let want = scalar::row_entropy(w);
            let got = row_entropy(SimdTier::Avx2, w);
            assert_close(got, want, 1.0, "log256 via row_entropy");
        }
    }

    #[test]
    fn latch_defaults_and_force() {
        // In-process we cannot re-latch from env (first caller wins), but
        // the resolved tier must be one the CPU supports, and force_active
        // must override it.
        let t = active();
        assert!(available(t), "latched tier {t:?} unsupported");
        force_active(SimdTier::Scalar);
        assert_eq!(active(), SimdTier::Scalar);
        force_active(t);
        assert_eq!(active(), t);
    }
}
