//! Dense row-major `f32` matrix with the kernels GCN training needs.
//!
//! The matrix is deliberately minimal: a contiguous `Vec<f32>` plus shape.
//! All hot kernels (`matmul*`) use an i-k-j loop order so the innermost loop
//! walks both operands contiguously, and parallelize over row blocks with
//! scoped threads (see [`crate::par`]).

use crate::par::par_row_chunks;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            writeln!(f)?;
            for i in 0..self.rows {
                writeln!(f, "  {:?}", self.row(i))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector. Panics when the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    /// Element at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    #[inline]
    /// Overwrite element `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The backing row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Dense matrix product `self @ rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch {:?} @ {:?}",
            self.shape(),
            rhs.shape()
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        let k_dim = self.cols;
        par_row_chunks(&mut out.data, n, |i0, chunk| {
            for (di, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = i0 + di;
                let a_row = &self.data[i * k_dim..(i + 1) * k_dim];
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &rhs.data[k * n..(k + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// `self^T @ rhs` without materializing the transpose.
    ///
    /// Used by backprop: for `C = A @ B`, `dB = A^T @ dC`.
    pub fn matmul_at_b(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows,
            rhs.rows,
            "matmul_at_b shape mismatch {:?}^T @ {:?}",
            self.shape(),
            rhs.shape()
        );
        // out is (self.cols x rhs.cols); accumulate row-by-row of the shared
        // leading dimension. Sequential: output rows are written by every k.
        let n = rhs.cols;
        let mut out = Matrix::zeros(self.cols, n);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = rhs.row(k);
            for (j, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[j * n..(j + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ rhs^T` without materializing the transpose.
    ///
    /// Used by backprop: for `C = A @ B`, `dA = dC @ B^T`.
    pub fn matmul_a_bt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_a_bt shape mismatch {:?} @ {:?}^T",
            self.shape(),
            rhs.shape()
        );
        let n = rhs.rows;
        let k_dim = self.cols;
        let mut out = Matrix::zeros(self.rows, n);
        par_row_chunks(&mut out.data, n, |i0, chunk| {
            for (di, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = i0 + di;
                let a_row = &self.data[i * k_dim..(i + 1) * k_dim];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &rhs.data[j * k_dim..(j + 1) * k_dim];
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise `self += scale * rhs`.
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, scale: f32) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += scale * b;
        }
    }

    /// Element-wise sum, returning a new matrix.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    /// Element-wise difference, returning a new matrix.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
        out
    }

    /// Multiply every element by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// A scaled copy.
    pub fn scaled(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(s);
        out
    }

    /// Apply `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Squared Frobenius norm `Σ x²`.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element of each row (ties resolve to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Row-wise softmax, returning a new matrix whose rows sum to 1.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for i in 0..out.rows {
            softmax_in_place(out.row_mut(i));
        }
        out
    }

    /// Shannon entropy of each row, treating the row as a distribution.
    ///
    /// Rows are assumed non-negative; zero entries contribute zero (the
    /// `p ln p → 0` limit).
    pub fn row_entropy(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .filter(|&&p| p > 0.0)
                    .map(|&p| -p * p.ln())
                    .sum()
            })
            .collect()
    }

    /// Vertical stack of row `indices` taken from `self`.
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// Horizontal concatenation of `parts` (all must share the row count).
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat of zero matrices");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "hcat row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let mut off = 0;
            let orow = out.row_mut(i);
            for p in parts {
                orow[off..off + p.cols].copy_from_slice(p.row(i));
                off += p.cols;
            }
        }
        out
    }

    /// Maximum absolute element difference against `rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Numerically-stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        z += *v;
    }
    let inv = 1.0 / z;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Numerically-stable in-place log-softmax over a slice.
pub fn log_softmax_in_place(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let z: f32 = row.iter().map(|&v| (v - max).exp()).sum();
    let lz = z.ln() + max;
    for v in row.iter_mut() {
        *v -= lz;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::eye(2);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let fast = a.matmul_at_b(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 2, &(0..8).map(|x| x as f32).collect::<Vec<_>>());
        let fast = a.matmul_a_bt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = m(2, 3, &[1., 2., 3., -1., 0., 100.]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
            assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_extreme_values_stable() {
        let a = m(1, 3, &[1000., 1000., 1000.]);
        let s = a.softmax_rows();
        for &p in s.row(0) {
            assert!((p - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let mut row = [0.5f32, -1.0, 2.0, 0.0];
        let mut row2 = row;
        log_softmax_in_place(&mut row);
        softmax_in_place(&mut row2);
        for (l, p) in row.iter().zip(row2.iter()) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_ties_first() {
        let a = m(2, 3, &[1., 3., 3., 5., 2., 1.]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn row_entropy_uniform_is_ln_k() {
        let a = Matrix::full(1, 4, 0.25);
        let e = a.row_entropy();
        assert!((e[0] - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn row_entropy_onehot_is_zero() {
        let a = m(1, 3, &[1., 0., 0.]);
        assert!(a.row_entropy()[0].abs() < 1e-6);
    }

    #[test]
    fn hcat_concatenates() {
        let a = m(2, 1, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        let c = Matrix::hcat(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1., 3., 4.]);
        assert_eq!(c.row(1), &[2., 5., 6.]);
    }

    #[test]
    fn take_rows_selects() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let t = a.take_rows(&[2, 0]);
        assert_eq!(t.row(0), &[5., 6.]);
        assert_eq!(t.row(1), &[1., 2.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn large_matmul_parallel_consistent() {
        // Exercise the parallel path (more rows than one chunk).
        let a = Matrix::from_fn(257, 31, |i, j| ((i * 7 + j * 13) % 5) as f32 - 2.0);
        let b = Matrix::from_fn(31, 17, |i, j| ((i * 3 + j * 11) % 7) as f32 - 3.0);
        let c = a.matmul(&b);
        // Spot-check a few entries against a scalar loop.
        for &(i, j) in &[(0, 0), (128, 8), (256, 16)] {
            let mut acc = 0.0;
            for k in 0..31 {
                acc += a.get(i, k) * b.get(k, j);
            }
            assert!((c.get(i, j) - acc).abs() < 1e-4);
        }
    }
}
