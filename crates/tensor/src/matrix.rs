//! Dense row-major `f32` matrix with the kernels GCN training needs.
//!
//! The matrix is deliberately minimal: a contiguous `Vec<f32>` plus shape.
//! The hot kernels (`matmul*`) use an i-k-j loop order so the innermost loop
//! walks both operands contiguously, add cache blocking so the streamed
//! operand is reused while it is still resident, and unroll the reduction
//! dimension into independent accumulator lanes so LLVM can autovectorize
//! the `f32` sums (a plain `acc += a * b` loop is a serial dependency
//! chain). All of them run on the persistent worker pool (see
//! [`crate::par`]): the forward products split the *output* rows across
//! tasks, while the transposed backprop product `A^T @ dC` splits the
//! *input* rows and reduces per-task partial buffers.
//!
//! Since the SIMD tier landed, the inner reductions (`axpy`/`axpy4`/
//! `dot`) and the row-wise softmax/entropy/elementwise kernels live in
//! [`crate::simd`]: each public method here hoists the latched
//! [`crate::simd::active`] tier once and hands the per-row work to the
//! tier's kernels (`RDD_SIMD=off` selects the original scalar bodies,
//! kept verbatim in `simd::scalar`).

use crate::par::{par_reduce_rows, par_row_chunks};
use crate::simd;
use rdd_obs::SpanCell;

/// Wall-time spans for the hot dense kernels; cumulative totals reach the
/// trace as `kernel` events at every `rdd_obs::flush()`. Disabled cost is
/// one atomic load per call.
static SPAN_MATMUL: SpanCell = SpanCell::new("matmul");
static SPAN_MATMUL_AT_B: SpanCell = SpanCell::new("matmul_at_b");
static SPAN_MATMUL_A_BT: SpanCell = SpanCell::new("matmul_a_bt");
static SPAN_TRANSPOSE: SpanCell = SpanCell::new("transpose");

/// Rows of the reduction dimension processed per cache block in `matmul`.
///
/// Bounds the slice of the right-hand operand that is streamed while one
/// block of output rows is revisited: `K_BLOCK * n * 4` bytes, which stays
/// L2-resident for the layer widths GCN training uses.
const K_BLOCK: usize = 256;

/// Output columns per cache block in `matmul_a_bt` (rows of `rhs` reused
/// across every output row of a task's chunk).
const J_BLOCK: usize = 64;

/// Tile edge for the blocked `transpose`.
const T_TILE: usize = 32;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            writeln!(f)?;
            for i in 0..self.rows {
                writeln!(f, "  {:?}", self.row(i))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector. Panics when the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    /// Element at `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    #[inline]
    /// Overwrite element `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The backing row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, yielding its backing row-major storage (the
    /// workspace pool recycles buffers through this).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dense matrix product `self @ rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `out += self @ rhs` into a caller-owned (zero-filled) output.
    ///
    /// This is the pooled-buffer entry point: `out` must arrive zeroed
    /// (e.g. from `Workspace::take_zeroed`) and shaped `self.rows x rhs.cols`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch {:?} @ {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into output shape mismatch"
        );
        let _span = SPAN_MATMUL.enter();
        let n = rhs.cols;
        let k_dim = self.cols;
        let tier = simd::active();
        par_row_chunks(&mut out.data, n, |i0, chunk| {
            // k-blocked i-k-j: while one block of output rows is revisited,
            // only `K_BLOCK` rows of `rhs` are streamed, so they stay hot.
            let mut kb = 0;
            while kb < k_dim {
                let ke = (kb + K_BLOCK).min(k_dim);
                for (di, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                    let i = i0 + di;
                    let a_row = &self.data[i * k_dim + kb..i * k_dim + ke];
                    let mut k = 0;
                    while k + 4 <= a_row.len() {
                        let base = (kb + k) * n;
                        simd::axpy4(
                            tier,
                            out_row,
                            [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]],
                            &rhs.data[base..base + n],
                            &rhs.data[base + n..base + 2 * n],
                            &rhs.data[base + 2 * n..base + 3 * n],
                            &rhs.data[base + 3 * n..base + 4 * n],
                        );
                        k += 4;
                    }
                    while k < a_row.len() {
                        let base = (kb + k) * n;
                        simd::axpy(tier, out_row, a_row[k], &rhs.data[base..base + n]);
                        k += 1;
                    }
                }
                kb = ke;
            }
        });
    }

    /// `self^T @ rhs` without materializing the transpose.
    ///
    /// Used by backprop: for `C = A @ B`, `dB = A^T @ dC`.
    pub fn matmul_at_b(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_at_b_into(rhs, &mut out);
        out
    }

    /// `out += self^T @ rhs` into a caller-owned (zero-filled) output of
    /// shape `self.cols x rhs.cols`.
    pub fn matmul_at_b_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "matmul_at_b shape mismatch {:?}^T @ {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols),
            "matmul_at_b_into output shape mismatch"
        );
        // out is (self.cols x rhs.cols); every input row k scatters into all
        // output rows, so the parallel split is over *input* rows with one
        // partial output buffer per task, reduced at the end
        // (par_reduce_rows). The k loop is unrolled by four so each output
        // row is loaded and stored once per quad instead of once per k.
        let _span = SPAN_MATMUL_AT_B.enter();
        let n = rhs.cols;
        let m = self.cols;
        let work = self.rows * m * n;
        let tier = simd::active();
        par_reduce_rows(&mut out.data, self.rows, work, |r0, r1, acc| {
            let mut k = r0;
            while k + 4 <= r1 {
                let a0 = self.row(k);
                let a1 = self.row(k + 1);
                let a2 = self.row(k + 2);
                let a3 = self.row(k + 3);
                let b0 = rhs.row(k);
                let b1 = rhs.row(k + 1);
                let b2 = rhs.row(k + 2);
                let b3 = rhs.row(k + 3);
                for j in 0..m {
                    simd::axpy4(
                        tier,
                        &mut acc[j * n..(j + 1) * n],
                        [a0[j], a1[j], a2[j], a3[j]],
                        b0,
                        b1,
                        b2,
                        b3,
                    );
                }
                k += 4;
            }
            while k < r1 {
                let a_row = self.row(k);
                let b_row = rhs.row(k);
                for (j, &a) in a_row.iter().enumerate() {
                    simd::axpy(tier, &mut acc[j * n..(j + 1) * n], a, b_row);
                }
                k += 1;
            }
        });
    }

    /// `self @ rhs^T` without materializing the transpose.
    ///
    /// Used by backprop: for `C = A @ B`, `dA = dC @ B^T`.
    pub fn matmul_a_bt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_a_bt_into(rhs, &mut out);
        out
    }

    /// `out = self @ rhs^T` into a caller-owned output of shape
    /// `self.rows x rhs.rows`. Every element is overwritten, so the prior
    /// contents of `out` are irrelevant (a recycled buffer need not be
    /// zeroed).
    pub fn matmul_a_bt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_a_bt shape mismatch {:?} @ {:?}^T",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.rows),
            "matmul_a_bt_into output shape mismatch"
        );
        let _span = SPAN_MATMUL_A_BT.enter();
        let n = rhs.rows;
        let k_dim = self.cols;
        let tier = simd::active();
        par_row_chunks(&mut out.data, n, |i0, chunk| {
            // j-blocked so a `J_BLOCK`-row slice of `rhs` is reused across
            // every output row of the chunk before the next slice streams in.
            let mut jb = 0;
            while jb < n {
                let je = (jb + J_BLOCK).min(n);
                for (di, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                    let i = i0 + di;
                    let a_row = &self.data[i * k_dim..(i + 1) * k_dim];
                    for (j, o) in out_row[jb..je].iter_mut().enumerate() {
                        let j = jb + j;
                        *o = simd::dot(tier, a_row, &rhs.data[j * k_dim..(j + 1) * k_dim]);
                    }
                }
                jb = je;
            }
        });
    }

    /// Materialized transpose (tiled so both sides stay cache-resident,
    /// parallel over output row blocks).
    pub fn transpose(&self) -> Matrix {
        let _span = SPAN_TRANSPOSE.enter();
        let (in_rows, in_cols) = (self.rows, self.cols);
        let mut out = Matrix::zeros(in_cols, in_rows);
        if in_rows == 0 || in_cols == 0 {
            return out;
        }
        par_row_chunks(&mut out.data, in_rows, |j0, chunk| {
            let jn = chunk.len() / in_rows;
            let mut jb = 0;
            while jb < jn {
                let je = (jb + T_TILE).min(jn);
                let mut ib = 0;
                while ib < in_rows {
                    let ie = (ib + T_TILE).min(in_rows);
                    for dj in jb..je {
                        let j = j0 + dj;
                        for i in ib..ie {
                            chunk[dj * in_rows + i] = self.data[i * in_cols + j];
                        }
                    }
                    ib = ie;
                }
                jb = je;
            }
        });
        out
    }

    /// Element-wise `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        simd::add_assign(simd::active(), &mut self.data, &rhs.data);
    }

    /// Element-wise `self += scale * rhs`.
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, scale: f32) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_scaled_assign shape mismatch"
        );
        simd::add_scaled_assign(simd::active(), &mut self.data, &rhs.data, scale);
    }

    /// Element-wise sum, returning a new matrix.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    /// Element-wise difference, returning a new matrix.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let mut out = self.clone();
        simd::mul_assign(simd::active(), &mut out.data, &rhs.data);
        out
    }

    /// Multiply every element by `s` in place.
    pub fn scale_assign(&mut self, s: f32) {
        simd::scale_assign(simd::active(), &mut self.data, s);
    }

    /// A scaled copy.
    pub fn scaled(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(s);
        out
    }

    /// Apply `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Squared Frobenius norm `Σ x²`.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element of each row (ties resolve to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.argmax_rows_into(&mut out);
        out
    }

    /// [`Matrix::argmax_rows`] into a caller-owned scratch vector (cleared
    /// and refilled; capacity is reused across epochs).
    pub fn argmax_rows_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
    }

    /// Row-wise softmax, returning a new matrix whose rows sum to 1.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        let tier = simd::active();
        for i in 0..out.rows {
            simd::softmax_in_place(tier, out.row_mut(i));
        }
        out
    }

    /// Shannon entropy of each row, treating the row as a distribution.
    ///
    /// Rows are assumed non-negative; zero entries contribute zero (the
    /// `p ln p → 0` limit).
    pub fn row_entropy(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.row_entropy_into(&mut out);
        out
    }

    /// [`Matrix::row_entropy`] into a caller-owned scratch vector (cleared
    /// and refilled; capacity is reused across epochs).
    pub fn row_entropy_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.rows);
        let tier = simd::active();
        for i in 0..self.rows {
            out.push(simd::row_entropy(tier, self.row(i)));
        }
    }

    /// Vertical stack of row `indices` taken from `self`.
    pub fn take_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (r, &i) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        out
    }

    /// [`Matrix::take_rows`] through the persistent worker pool: large row
    /// gathers (e.g. a serve engine's micro-batch assembling hundreds of
    /// prediction rows) split across threads via
    /// [`crate::par::par_row_chunks`]; small ones fall back to a plain
    /// sequential copy. All `indices` must be in range.
    pub fn take_rows_par(&self, indices: &[usize]) -> Matrix {
        let cols = self.cols;
        let mut out = Matrix::zeros(indices.len(), cols);
        if indices.is_empty() {
            return out;
        }
        crate::par::par_row_chunks(out.as_mut_slice(), cols, |row0, chunk| {
            for (r, dst) in chunk.chunks_exact_mut(cols).enumerate() {
                dst.copy_from_slice(self.row(indices[row0 + r]));
            }
        });
        out
    }

    /// Horizontal concatenation of `parts` (all must share the row count).
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat of zero matrices");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        Matrix::hcat_into(parts, &mut out);
        out
    }

    /// [`Matrix::hcat`] into a caller-owned output. Every element is
    /// overwritten, so a recycled buffer need not be zeroed.
    pub fn hcat_into(parts: &[&Matrix], out: &mut Matrix) {
        assert!(!parts.is_empty(), "hcat of zero matrices");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "hcat row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        assert_eq!(out.shape(), (rows, cols), "hcat_into output shape mismatch");
        for i in 0..rows {
            let mut off = 0;
            let orow = out.row_mut(i);
            for p in parts {
                orow[off..off + p.cols].copy_from_slice(p.row(i));
                off += p.cols;
            }
        }
    }

    /// Maximum absolute element difference against `rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Numerically-stable in-place softmax over a slice, on the latched
/// SIMD tier (`RDD_SIMD=off` gives the original scalar kernel).
pub fn softmax_in_place(row: &mut [f32]) {
    simd::softmax_in_place(simd::active(), row);
}

/// Numerically-stable in-place log-softmax over a slice, on the latched
/// SIMD tier (`RDD_SIMD=off` gives the original scalar kernel).
pub fn log_softmax_in_place(row: &mut [f32]) {
    simd::log_softmax_in_place(simd::active(), row);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::eye(2);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let fast = a.matmul_at_b(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 2, &(0..8).map(|x| x as f32).collect::<Vec<_>>());
        let fast = a.matmul_a_bt(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = m(2, 3, &[1., 2., 3., -1., 0., 100.]);
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
            assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_extreme_values_stable() {
        let a = m(1, 3, &[1000., 1000., 1000.]);
        let s = a.softmax_rows();
        for &p in s.row(0) {
            assert!((p - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let mut row = [0.5f32, -1.0, 2.0, 0.0];
        let mut row2 = row;
        log_softmax_in_place(&mut row);
        softmax_in_place(&mut row2);
        for (l, p) in row.iter().zip(row2.iter()) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_rows_ties_first() {
        let a = m(2, 3, &[1., 3., 3., 5., 2., 1.]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn row_entropy_uniform_is_ln_k() {
        let a = Matrix::full(1, 4, 0.25);
        let e = a.row_entropy();
        assert!((e[0] - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn row_entropy_onehot_is_zero() {
        let a = m(1, 3, &[1., 0., 0.]);
        assert!(a.row_entropy()[0].abs() < 1e-6);
    }

    #[test]
    fn hcat_concatenates() {
        let a = m(2, 1, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        let c = Matrix::hcat(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1., 3., 4.]);
        assert_eq!(c.row(1), &[2., 5., 6.]);
    }

    #[test]
    fn take_rows_selects() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let t = a.take_rows(&[2, 0]);
        assert_eq!(t.row(0), &[5., 6.]);
        assert_eq!(t.row(1), &[1., 2.]);
    }

    #[test]
    fn take_rows_par_matches_sequential() {
        // Big enough to cross par_row_chunks' parallel threshold when the
        // pool has threads; bitwise-equal either way.
        let rows = 300;
        let cols = 64;
        let a = Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols).map(|i| (i as f32).sin()).collect(),
        );
        let indices: Vec<usize> = (0..rows).rev().collect();
        let seq = a.take_rows(&indices);
        let par = a.take_rows_par(&indices);
        assert_eq!(seq.shape(), par.shape());
        assert!(seq
            .as_slice()
            .iter()
            .zip(par.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.take_rows_par(&[]).shape(), (0, cols));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn large_matmul_parallel_consistent() {
        // Exercise the parallel path (more rows than one chunk).
        let a = Matrix::from_fn(257, 31, |i, j| ((i * 7 + j * 13) % 5) as f32 - 2.0);
        let b = Matrix::from_fn(31, 17, |i, j| ((i * 3 + j * 11) % 7) as f32 - 3.0);
        let c = a.matmul(&b);
        // Spot-check a few entries against a scalar loop.
        for &(i, j) in &[(0, 0), (128, 8), (256, 16)] {
            let mut acc = 0.0;
            for k in 0..31 {
                acc += a.get(i, k) * b.get(k, j);
            }
            assert!((c.get(i, j) - acc).abs() < 1e-4);
        }
    }
}
