//! Compressed Sparse Row matrix and the SpMM kernels used by GCN layers.
//!
//! Two matrices in this codebase are sparse and *constant* during training:
//! the normalized adjacency Â and the bag-of-words feature matrix X. Both
//! only ever appear on the left of a product with a dense matrix, so CSR with
//! a row-gather SpMM is the natural layout. The transpose product
//! (`self^T @ dense`, needed by backprop through `X @ W`) is implemented as a
//! scatter over the same CSR arrays, avoiding a materialized CSC copy. The
//! scatter-style transposed kernels (`spmm_t`, `spmv_t`) share their output
//! rows across input rows, so they parallelize with per-task partial output
//! buffers reduced at the end ([`crate::par::par_reduce_rows`]); the
//! gather-style kernels (`spmm`, `spmv`) split output rows directly.

use crate::matrix::Matrix;
use crate::par::{par_reduce_rows, par_row_chunks};
use crate::simd;
use rdd_obs::SpanCell;

/// Wall-time spans for the sparse kernels (see the dense twins in
/// `matrix.rs`); near-free when tracing is off.
static SPAN_SPMM: SpanCell = SpanCell::new("spmm");
static SPAN_SPMM_T: SpanCell = SpanCell::new("spmm_t");
static SPAN_SPMV: SpanCell = SpanCell::new("spmv");
static SPAN_SPMV_T: SpanCell = SpanCell::new("spmv_t");

/// CSR sparse matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[i]..indptr[i+1]` is the slice of `indices`/`values` for row i.
    indptr: Vec<usize>,
    /// Column index of each stored entry (u32: graphs here are < 4B nodes).
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from COO triplets `(row, col, value)`.
    ///
    /// Duplicate coordinates are summed. Entries that sum to exactly zero are
    /// kept (callers that care can [`CsrMatrix::prune`] afterwards).
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(
                r < rows && c < cols,
                "triplet ({r},{c}) out of bounds for {rows}x{cols}"
            );
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let indptr_raw = counts.clone();
        let mut indices = vec![0u32; triplets.len()];
        let mut values = vec![0f32; triplets.len()];
        let mut cursor = indptr_raw.clone();
        for &(r, c, v) in triplets {
            let k = cursor[r];
            indices[k] = c as u32;
            values[k] = v;
            cursor[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_indptr = vec![0usize; rows + 1];
        let mut out_indices = Vec::with_capacity(triplets.len());
        let mut out_values = Vec::with_capacity(triplets.len());
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            scratch.clear();
            let (s, e) = (indptr_raw[r], indptr_raw[r + 1]);
            scratch.extend(
                indices[s..e]
                    .iter()
                    .copied()
                    .zip(values[s..e].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut last_col = u32::MAX;
            for &(c, v) in &scratch {
                if c == last_col {
                    *out_values
                        .last_mut()
                        .expect("duplicate implies prior entry") += v;
                } else {
                    out_indices.push(c);
                    out_values.push(v);
                    last_col = c;
                }
            }
            out_indptr[r + 1] = out_indices.len();
        }
        Self {
            rows,
            cols,
            indptr: out_indptr,
            indices: out_indices,
            values: out_values,
        }
    }

    /// Build directly from CSR arrays (rows of `indices` must be sorted).
    pub fn from_csr(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1);
        assert_eq!(indices.len(), values.len());
        assert_eq!(*indptr.last().expect("indptr non-empty"), indices.len());
        debug_assert!(indices.iter().all(|&c| (c as usize) < cols));
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An `n x n` identity in CSR form.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column_indices, values)` of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Number of stored entries in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Look up a single entry (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> f32 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Iterate all stored `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Drop stored entries with `|value| <= eps`.
    ///
    /// Rows are already sorted, so the CSR arrays are rebuilt in one linear
    /// pass — no round-trip through `from_triplets` and its per-row re-sort.
    pub fn prune(&self, eps: f32) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if v.abs() > eps {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Dense copy (test/debug use only — O(rows·cols) memory).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, out.get(r, c) + v);
        }
        out
    }

    /// Sparse-dense product `self @ rhs` (row-gather, parallel over rows).
    pub fn spmm(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.spmm_into(rhs, &mut out);
        out
    }

    /// `out += self @ rhs` into a caller-owned (zero-filled) output of
    /// shape `self.rows x rhs.cols` (the pooled-buffer entry point).
    pub fn spmm_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm shape mismatch {:?} @ {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols()),
            "spmm_into output shape mismatch"
        );
        let _span = SPAN_SPMM.enter();
        let n = rhs.cols();
        let tier = simd::active();
        par_row_chunks(out.as_mut_slice(), n, |i0, chunk| {
            for (di, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = i0 + di;
                let (cols, vals) = self.row(i);
                // Gather four neighbors per step: `axpy4` amortizes the
                // per-entry loop overhead and breaks the dependence chain
                // on `out_row`, which is what lets the ~16-nnz rows of
                // bag-of-words features run at dense-kernel throughput.
                let mut qc = cols.chunks_exact(4);
                let mut qv = vals.chunks_exact(4);
                for (c4, v4) in (&mut qc).zip(&mut qv) {
                    simd::axpy4(
                        tier,
                        out_row,
                        [v4[0], v4[1], v4[2], v4[3]],
                        rhs.row(c4[0] as usize),
                        rhs.row(c4[1] as usize),
                        rhs.row(c4[2] as usize),
                        rhs.row(c4[3] as usize),
                    );
                }
                for (&c, &v) in qc.remainder().iter().zip(qv.remainder()) {
                    simd::axpy(tier, out_row, v, rhs.row(c as usize));
                }
            }
        });
    }

    /// Transpose-product `self^T @ rhs` via scatter, parallel over input
    /// rows with per-task partial output buffers.
    ///
    /// Needed by backprop: for `C = S @ W` with constant sparse `S`,
    /// `dW = S^T @ dC`.
    pub fn spmm_t(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols());
        self.spmm_t_into(rhs, &mut out);
        out
    }

    /// `out += self^T @ rhs` into a caller-owned (zero-filled) output of
    /// shape `self.cols x rhs.cols`.
    pub fn spmm_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows(),
            "spmm_t shape mismatch {:?}^T @ {:?}",
            self.shape(),
            rhs.shape()
        );
        assert_eq!(
            out.shape(),
            (self.cols, rhs.cols()),
            "spmm_t_into output shape mismatch"
        );
        let _span = SPAN_SPMM_T.enter();
        let n = rhs.cols();
        let work = self.nnz() * n;
        let tier = simd::active();
        par_reduce_rows(out.as_mut_slice(), self.rows, work, |r0, r1, acc| {
            for i in r0..r1 {
                let (cols, vals) = self.row(i);
                let b_row = rhs.row(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    let c = c as usize;
                    simd::axpy(tier, &mut acc[c * n..(c + 1) * n], v, b_row);
                }
            }
        });
    }

    /// Sparse-vector product `self @ v` (row-gather, parallel over rows).
    pub fn spmv(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, v.len(), "spmv shape mismatch");
        let _span = SPAN_SPMV.enter();
        let mut out = vec![0.0f32; self.rows];
        par_row_chunks(&mut out, 1, |i0, chunk| {
            for (di, o) in chunk.iter_mut().enumerate() {
                let (cols, vals) = self.row(i0 + di);
                *o = cols
                    .iter()
                    .zip(vals)
                    .map(|(&c, &w)| w * v[c as usize])
                    .sum();
            }
        });
        out
    }

    /// Transpose-vector product `self^T @ v` (scatter, parallel over input
    /// rows with per-task partial buffers).
    pub fn spmv_t(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.rows, v.len(), "spmv_t shape mismatch");
        let _span = SPAN_SPMV_T.enter();
        let mut out = vec![0.0f32; self.cols];
        par_reduce_rows(&mut out, self.rows, self.nnz(), |r0, r1, acc| {
            for (i, &vi) in v.iter().enumerate().take(r1).skip(r0) {
                let (cols, vals) = self.row(i);
                for (&c, &w) in cols.iter().zip(vals) {
                    acc[c as usize] += w * vi;
                }
            }
        });
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<_> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// A copy with each stored value transformed by `f(row, col, value)`.
    pub fn map_values(&self, mut f: impl FnMut(usize, usize, f32) -> f32) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let (s, e) = (self.indptr[r], self.indptr[r + 1]);
            for k in s..e {
                out.values[k] = f(r, out.indices[k] as usize, self.values[k]);
            }
        }
        out
    }

    /// Row sums (out-degree when the matrix is an adjacency).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows).map(|i| self.row(i).1.iter().sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn triplets_roundtrip() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 2, &[(0, 1, 1.0), (0, 1, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    fn rows_sorted_by_column() {
        let m = CsrMatrix::from_triplets(1, 5, &[(0, 4, 1.0), (0, 1, 1.0), (0, 3, 1.0)]);
        assert_eq!(m.row(0).0, &[1, 3, 4]);
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let d = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let fast = m.spmm(&d);
        let slow = m.to_dense().matmul(&d);
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn spmm_t_matches_dense_transpose() {
        let m = sample();
        let d = Matrix::from_vec(2, 4, (0..8).map(|x| x as f32).collect());
        let fast = m.spmm_t(&d);
        let slow = m.to_dense().transpose().matmul(&d);
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn spmv_and_transpose_agree_with_dense() {
        let m = sample();
        let v = [1.0, -2.0, 0.5];
        let fast = m.spmv(&v);
        let dense = m.to_dense();
        for i in 0..2 {
            let slow: f32 = (0..3).map(|j| dense.get(i, j) * v[j]).sum();
            assert!((fast[i] - slow).abs() < 1e-6);
        }
        let u = [2.0, -1.0];
        let fast_t = m.spmv_t(&u);
        for j in 0..3 {
            let slow: f32 = (0..2).map(|i| dense.get(i, j) * u[i]).sum();
            assert!((fast_t[j] - slow).abs() < 1e-6);
        }
    }

    #[test]
    fn identity_spmm_is_noop() {
        let i = CsrMatrix::identity(3);
        let d = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        assert!(i.spmm(&d).max_abs_diff(&d) < 1e-7);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn prune_drops_small_entries() {
        let m = CsrMatrix::from_triplets(1, 3, &[(0, 0, 1e-9), (0, 1, 1.0)]);
        let p = m.prune(1e-6);
        assert_eq!(p.nnz(), 1);
        assert_eq!(p.get(0, 1), 1.0);
    }

    #[test]
    fn row_sums_match() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_out_of_bounds_panics() {
        let _ = CsrMatrix::from_triplets(1, 1, &[(0, 1, 1.0)]);
    }
}
