//! Scoped-thread row-block parallelism.
//!
//! A tiny substitute for `rayon` (the offline dependency set excludes it):
//! the output buffer is split into contiguous row blocks, each handed to one
//! scoped `std::thread`. Inputs are captured by shared reference, so the
//! closure must only write its own chunk — which the `chunks_mut` split
//! already guarantees.

use std::sync::OnceLock;

/// Number of worker threads to use for data-parallel kernels.
///
/// Defaults to the machine's available parallelism, clamped to 16; override
/// with the `RDD_THREADS` environment variable (a value of 1 disables
/// threading entirely, which is useful for profiling and debugging).
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RDD_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16)
    })
}

/// Split `out` (a row-major buffer with `cols` columns) into row blocks and
/// run `f(first_row_of_chunk, chunk)` on each block, in parallel.
///
/// Falls back to a sequential call when the work is small or only one thread
/// is configured.
pub fn par_row_chunks<F>(out: &mut [f32], cols: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(cols > 0, "par_row_chunks needs at least one column");
    debug_assert_eq!(out.len() % cols, 0);
    let rows = out.len() / cols;
    let threads = num_threads();
    // Threading pays off only when each worker gets a meaningful slice.
    if threads <= 1 || rows < 64 || out.len() < 1 << 14 {
        f(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_rows * cols).enumerate() {
            let f = &f;
            scope.spawn(move || f(idx * chunk_rows, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_small_input() {
        let mut out = vec![0.0f32; 8];
        par_row_chunks(&mut out, 2, |row0, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (row0 * 2 + i) as f32;
            }
        });
        assert_eq!(out, (0..8).map(|x| x as f32).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_large_input_covers_all_rows() {
        let cols = 64;
        let rows = 512;
        let mut out = vec![-1.0f32; rows * cols];
        par_row_chunks(&mut out, cols, |row0, chunk| {
            for (di, row) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = (row0 + di) as f32;
                for v in row {
                    *v = r;
                }
            }
        });
        for i in 0..rows {
            for j in 0..cols {
                assert_eq!(out[i * cols + j], i as f32, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads() >= 1);
    }
}
