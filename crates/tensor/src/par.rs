//! Persistent worker pool and row-block parallel primitives.
//!
//! A tiny substitute for `rayon` (the offline dependency set excludes it).
//! Earlier versions spawned scoped `std::thread`s on every kernel call; the
//! GCN training loop issues tens of thousands of kernel calls per run, so the
//! spawn/join latency dominated small kernels. The pool here is spawned once
//! (lazily, on the first parallel call), sized by [`num_threads`], and lives
//! for the rest of the process.
//!
//! Two primitives cover every kernel in the crate:
//!
//! * [`par_row_chunks`] — split a row-major output buffer into contiguous row
//!   blocks, one task per block ("each task owns its output rows").
//! * [`par_reduce_rows`] — split the *input* rows into blocks, give each task
//!   a private zeroed copy of the output to scatter into, then sum the
//!   partial buffers ("each task owns its input rows"). This is what makes
//!   the transposed backprop products (`A^T @ dC`, `S^T @ dC`) parallel: the
//!   scatter destination is shared, so each worker accumulates into its own
//!   buffer and the buffers are reduced at the end.
//!
//! Work distribution is a single injector queue (condvar-guarded
//! `VecDeque`; blocked workers release the lock while they wait). The
//! calling thread always executes task 0 itself and then helps drain the
//! queue before blocking on a completion latch, so a one-thread pool
//! degenerates to a plain sequential call and nested use cannot deadlock.
//! Tasks are self-contained (`task` pointer + index + latch); worker panics
//! are caught, recorded on the latch and re-raised on the calling thread.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use rdd_obs::{CounterCell, GaugeCell};

/// Pool telemetry (all no-ops unless `RDD_TRACE` enables the recorder):
/// `run_tasks` invocations, tasks fanned out, `par_reduce_rows` invocations,
/// and the deepest injector queue observed.
static OBS_RUN_TASKS: CounterCell = CounterCell::new("pool.run_tasks");
static OBS_TASKS: CounterCell = CounterCell::new("pool.tasks");
static OBS_PAR_REDUCE: CounterCell = CounterCell::new("pool.par_reduce_rows");
static OBS_QUEUE_PEAK: GaugeCell = GaugeCell::new("pool.queue_peak");

/// Number of worker threads to use for data-parallel kernels.
///
/// Defaults to the machine's available parallelism, clamped to 16; override
/// with the `RDD_THREADS` environment variable (a value of 1 disables
/// threading entirely, which is useful for profiling and debugging). An
/// unparseable `RDD_THREADS` is reported once — into the trace when tracing
/// is on, on stderr otherwise — and then ignored. The resolved width is
/// emitted as a `pool_init` trace event.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        let resolved = rdd_obs::env::parse_with("RDD_THREADS", "a positive integer", |v| {
            v.parse::<usize>().ok().map(|n| n.max(1))
        });
        let n = resolved.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(16)
        });
        rdd_obs::event("pool_init", &[("threads", rdd_obs::Json::from(n))]);
        n
    })
}

/// Countdown latch: the submitting thread blocks until every outstanding
/// task has run, and learns whether any of them panicked.
struct Latch {
    remaining: AtomicUsize,
    panicked: AtomicBool,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: AtomicUsize::new(count),
            panicked: AtomicBool::new(false),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Taking the lock before notifying closes the race against a
            // waiter that observed `remaining > 0` but has not yet parked.
            let _guard = self.mutex.lock().unwrap();
            self.cond.notify_all();
        }
    }

    fn wait(&self) {
        let mut guard = self.mutex.lock().unwrap();
        while self.remaining.load(Ordering::Acquire) != 0 {
            guard = self.cond.wait(guard).unwrap();
        }
    }
}

/// A unit of work: run `task(index)`, then count down the latch.
///
/// The `'static` on `task` is a lie told by [`run_tasks`]: the submitting
/// thread blocks on `latch` before its borrow expires, so the reference is
/// live for as long as any worker can touch it.
struct Job {
    task: &'static (dyn Fn(usize) + Sync),
    index: usize,
    latch: Arc<Latch>,
}

fn run_job(job: Job) {
    let ok = panic::catch_unwind(AssertUnwindSafe(|| (job.task)(job.index))).is_ok();
    if !ok {
        job.latch.panicked.store(true, Ordering::Release);
    }
    job.latch.count_down();
}

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl Pool {
    fn push(&self, job: Job) {
        let depth = {
            let mut queue = self.queue.lock().unwrap();
            queue.push_back(job);
            queue.len()
        };
        self.available.notify_one();
        OBS_QUEUE_PEAK.record_max(depth as u64);
    }

    /// Non-blocking pop, used by submitting threads to help drain the queue.
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }

    /// Blocking pop for workers; the lock is released while waiting.
    fn pop_blocking(&self) -> Job {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(job) = queue.pop_front() {
                return job;
            }
            queue = self.available.wait(queue).unwrap();
        }
    }
}

fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<&'static Pool>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let workers = num_threads().saturating_sub(1);
        if workers == 0 {
            return None;
        }
        // The pool lives for the rest of the process; leaking it hands the
        // worker threads a plain `'static` reference.
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("rdd-worker-{i}"))
                .spawn(move || loop {
                    run_job(pool.pop_blocking());
                })
                .expect("failed to spawn rdd-tensor worker thread");
        }
        Some(pool)
    })
}

/// Run `task(i)` for every `i in 0..n_tasks` across the worker pool.
///
/// The calling thread runs task 0 (and helps drain the queue), so the pool
/// only needs `num_threads() - 1` workers. Returns once every task has
/// finished; panics if any task panicked. Tasks must be independent — they
/// run concurrently in arbitrary order.
pub fn run_tasks(n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
    if n_tasks == 0 {
        return;
    }
    OBS_RUN_TASKS.add(1);
    OBS_TASKS.add(n_tasks as u64);
    let Some(pool) = pool() else {
        for i in 0..n_tasks {
            task(i);
        }
        return;
    };
    if n_tasks == 1 {
        task(0);
        return;
    }
    let latch = Arc::new(Latch::new(n_tasks - 1));
    // SAFETY: every job holds a clone of `latch`, and we block on that latch
    // below before `task`'s borrow can expire, so the 'static lifetime the
    // workers see is sound.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    for index in 1..n_tasks {
        pool.push(Job {
            task: task_static,
            index,
            latch: Arc::clone(&latch),
        });
    }
    task(0);
    // Help drain the queue instead of going idle; we may execute jobs
    // submitted by other threads, which is harmless (they are
    // self-contained) and keeps the pool work-conserving.
    while let Some(job) = pool.try_pop() {
        run_job(job);
    }
    latch.wait();
    if latch.panicked.load(Ordering::Acquire) {
        panic!("rdd-tensor parallel task panicked");
    }
}

/// Raw pointer wrapper that lets tasks write disjoint regions of one buffer.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than field access) so closures capture the whole
    /// `Sync` wrapper instead of the raw pointer field (edition-2021
    /// disjoint capture would otherwise grab the `!Sync` pointer itself).
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Split `out` (a row-major buffer with `cols` columns) into row blocks and
/// run `f(first_row_of_chunk, chunk)` on each block, in parallel.
///
/// Falls back to a sequential call when the work is small or only one thread
/// is configured.
pub fn par_row_chunks<F>(out: &mut [f32], cols: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(cols > 0, "par_row_chunks needs at least one column");
    debug_assert_eq!(out.len() % cols, 0);
    let rows = out.len() / cols;
    let threads = num_threads();
    // Threading pays off only when each worker gets a meaningful slice.
    if threads <= 1 || rows < 64 || out.len() < 1 << 14 {
        f(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    let n_chunks = rows.div_ceil(chunk_rows);
    let total = out.len();
    let base = SendPtr(out.as_mut_ptr());
    run_tasks(n_chunks, &|t| {
        let start = t * chunk_rows * cols;
        let end = (start + chunk_rows * cols).min(total);
        // SAFETY: chunk `t` covers elements [start, end), disjoint across
        // tasks, and the borrow of `out` outlives `run_tasks`.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(t * chunk_rows, chunk);
    });
}

/// Parallel scatter-reduction over input rows.
///
/// Splits the input row range `0..in_rows` into contiguous blocks and runs
/// `f(row_start, row_end, acc)` once per block, where `acc` is an
/// accumulation buffer the same length as `out`. Block 0 accumulates
/// directly into `out`; every other block gets a private zeroed buffer, and
/// the partial buffers are summed into `out` at the end (itself in
/// parallel). `f` must only ever *add* into `acc`.
///
/// `out` must arrive zeroed (the sequential fallback runs `f` directly on
/// it). `work` is an estimate of the total number of accumulations `f`
/// performs across all rows (e.g. `nnz * cols` for a sparse scatter); it
/// gates the parallel path so that tiny scatters skip the buffer setup.
pub fn par_reduce_rows<F>(out: &mut [f32], in_rows: usize, work: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    OBS_PAR_REDUCE.add(1);
    let threads = num_threads();
    // The parallel path costs one zeroed buffer + one reduction pass of
    // `out.len()` per extra block; require the scattered work to dwarf it.
    if threads <= 1 || in_rows < 2 || work < 1 << 15 || work < 8 * out.len() {
        f(0, in_rows, out);
        return;
    }
    let n_chunks = threads.min(in_rows);
    let chunk_rows = in_rows.div_ceil(n_chunks);
    let n_chunks = in_rows.div_ceil(chunk_rows);
    let len = out.len();
    let mut partials: Vec<Vec<f32>> = (1..n_chunks).map(|_| Vec::new()).collect();
    {
        let out_base = SendPtr(out.as_mut_ptr());
        let partials_base = partials.as_mut_ptr() as usize;
        run_tasks(n_chunks, &|t| {
            let start = t * chunk_rows;
            let end = (start + chunk_rows).min(in_rows);
            if t == 0 {
                // SAFETY: only task 0 touches `out` during this phase.
                let acc = unsafe { std::slice::from_raw_parts_mut(out_base.get(), len) };
                f(start, end, acc);
            } else {
                // SAFETY: slot `t - 1` is owned exclusively by task `t`, and
                // `partials` outlives `run_tasks`.
                let slot = unsafe { &mut *(partials_base as *mut Vec<f32>).add(t - 1) };
                *slot = vec![0.0; len];
                f(start, end, slot);
            }
        });
    }
    // Reduce the partial buffers into `out`, split by output range.
    let r_chunk = len.div_ceil(threads).max(1024);
    let r_tasks = len.div_ceil(r_chunk);
    let out_base = SendPtr(out.as_mut_ptr());
    let partials = &partials;
    run_tasks(r_tasks, &|t| {
        let start = t * r_chunk;
        let end = (start + r_chunk).min(len);
        // SAFETY: ranges are disjoint across tasks.
        let dst = unsafe { std::slice::from_raw_parts_mut(out_base.get().add(start), end - start) };
        for p in partials {
            for (o, &v) in dst.iter_mut().zip(&p[start..end]) {
                *o += v;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_small_input() {
        let mut out = vec![0.0f32; 8];
        par_row_chunks(&mut out, 2, |row0, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (row0 * 2 + i) as f32;
            }
        });
        assert_eq!(out, (0..8).map(|x| x as f32).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_large_input_covers_all_rows() {
        let cols = 64;
        let rows = 512;
        let mut out = vec![-1.0f32; rows * cols];
        par_row_chunks(&mut out, cols, |row0, chunk| {
            for (di, row) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = (row0 + di) as f32;
                for v in row {
                    *v = r;
                }
            }
        });
        for i in 0..rows {
            for j in 0..cols {
                assert_eq!(out[i * cols + j], i as f32, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn run_tasks_covers_every_index_repeatedly() {
        // Repeated calls reuse the pool; every index must be hit exactly once
        // per call.
        for round in 0..50 {
            let n = 1 + (round % 7);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run_tasks(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round} index {i}");
            }
        }
    }

    #[test]
    fn run_tasks_propagates_panics() {
        let caught = panic::catch_unwind(|| {
            run_tasks(4, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err(), "panic in a task must reach the caller");
        // The pool must still be usable afterwards.
        let count = AtomicUsize::new(0);
        run_tasks(4, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn par_reduce_rows_sums_partials() {
        // Scatter: every input row adds 1.0 to every output slot; the result
        // must equal the number of input rows regardless of chunking.
        let in_rows = 512;
        let mut out = vec![0.0f32; 2048];
        let work = in_rows * out.len(); // force the parallel path when pooled
        par_reduce_rows(&mut out, in_rows, work, |r0, r1, acc| {
            for _ in r0..r1 {
                for v in acc.iter_mut() {
                    *v += 1.0;
                }
            }
        });
        assert!(out.iter().all(|&v| v == in_rows as f32));
    }

    #[test]
    fn par_reduce_rows_small_work_runs_sequentially_on_out() {
        let mut out = vec![0.0f32; 4];
        par_reduce_rows(&mut out, 3, 12, |r0, r1, acc| {
            for r in r0..r1 {
                acc[r % 4] += (r + 1) as f32;
            }
        });
        assert_eq!(out, vec![1.0, 2.0, 3.0, 0.0]);
    }
}
