//! Weight initialization and RNG helpers.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG from a `u64` seed (all experiments are seeded).
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Glorot/Xavier uniform initialization, the scheme the reference GCN uses:
/// `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..a))
}

/// Uniform `U(-a, a)` initialization with an explicit bound.
pub fn uniform(rows: usize, cols: usize, a: f32, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_within_bounds() {
        let mut rng = seeded_rng(1);
        let w = glorot_uniform(100, 50, &mut rng);
        let a = (6.0 / 150.0f32).sqrt();
        assert!(w.as_slice().iter().all(|&x| x.abs() <= a));
        // Not degenerate: some spread.
        let mean: f32 = w.sum() / w.len() as f32;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let va: Vec<f32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }
}
