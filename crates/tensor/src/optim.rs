//! Adam optimizer with (classic, coupled) L2 weight decay.
//!
//! The reference GCN implementation regularizes only the first layer's
//! weights, so decay is configured per parameter slot via `decay_mask`.

use crate::matrix::Matrix;

/// Adam with bias correction. One instance per model; state is kept per
/// parameter slot and lazily shaped on the first step.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (default 0.9).
    pub beta1: f32,
    /// Second-moment decay (default 0.999).
    pub beta2: f32,
    /// Denominator fuzz (default 1e-8).
    pub eps: f32,
    /// L2 coefficient added to the gradient (`g += wd * w`) for slots whose
    /// `decay_mask` entry is true.
    pub weight_decay: f32,
    decay_mask: Vec<bool>,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with the paper's defaults (`lr = 0.01`, betas 0.9/0.999).
    pub fn new(lr: f32, weight_decay: f32, decay_mask: Vec<bool>) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            decay_mask,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Override the learning rate (used by warm-restart schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update. `grads[i] == None` leaves `params[i]` untouched
    /// (its Adam state does not advance either).
    pub fn step(&mut self, params: &mut [Matrix], grads: &[Option<Matrix>]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let Some(g) = &grads[i] else { continue };
            assert_eq!(g.shape(), p.shape(), "grad shape mismatch on slot {i}");
            let decay = if self.decay_mask.get(i).copied().unwrap_or(false) {
                self.weight_decay
            } else {
                0.0
            };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
            for k in 0..p.len() {
                let gk = g.as_slice()[k] + decay * p.as_slice()[k];
                let mk = b1 * m.as_slice()[k] + (1.0 - b1) * gk;
                let vk = b2 * v.as_slice()[k] + (1.0 - b2) * gk * gk;
                m.as_mut_slice()[k] = mk;
                v.as_mut_slice()[k] = vk;
                let mhat = mk / bc1;
                let vhat = vk / bc2;
                p.as_mut_slice()[k] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam should quickly minimize a simple convex quadratic `‖w − c‖²`.
    #[test]
    fn adam_converges_on_quadratic() {
        let target = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 3.0]);
        let mut params = vec![Matrix::zeros(2, 2)];
        let mut opt = Adam::new(0.1, 0.0, vec![false]);
        for _ in 0..500 {
            let g = params[0].sub(&target).scaled(2.0);
            opt.step(&mut params, &[Some(g)]);
        }
        assert!(params[0].max_abs_diff(&target) < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        // With zero task gradient and decay on, weights decay toward zero.
        let mut params = vec![Matrix::full(1, 4, 10.0)];
        let mut opt = Adam::new(0.05, 1.0, vec![true]);
        let zero = Matrix::zeros(1, 4);
        for _ in 0..600 {
            opt.step(&mut params, &[Some(zero.clone())]);
        }
        assert!(params[0].as_slice().iter().all(|&w| w.abs() < 1.0));
    }

    #[test]
    fn unmasked_slot_ignores_decay() {
        let mut params = vec![Matrix::full(1, 1, 5.0)];
        let mut opt = Adam::new(0.05, 1.0, vec![false]);
        let zero = Matrix::zeros(1, 1);
        for _ in 0..50 {
            opt.step(&mut params, &[Some(zero.clone())]);
        }
        // No gradient and no decay: parameter unchanged.
        assert_eq!(params[0].get(0, 0), 5.0);
    }

    #[test]
    fn none_grad_skips_slot() {
        let mut params = vec![Matrix::full(1, 1, 1.0), Matrix::full(1, 1, 1.0)];
        let mut opt = Adam::new(0.1, 0.0, vec![false, false]);
        opt.step(&mut params, &[Some(Matrix::full(1, 1, 1.0)), None]);
        assert!(params[0].get(0, 0) < 1.0);
        assert_eq!(params[1].get(0, 0), 1.0);
    }
}
