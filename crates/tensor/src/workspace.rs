//! Epoch-persistent buffer pool for the training loop.
//!
//! Every training epoch builds a fresh [`crate::Tape`], and before this
//! module existed every node value and every backward gradient accumulator
//! was a freshly heap-allocated `Vec<f32>`. The shapes, however, are
//! *identical* from epoch to epoch — the graph, the layer widths and the op
//! sequence are all fixed — so the second epoch can run entirely out of the
//! buffers the first epoch released.
//!
//! [`Workspace`] is a shape-keyed free-list: buffers are keyed by element
//! count (`rows * cols`), taken with [`Workspace::take_zeroed`] /
//! [`Workspace::take_copy`] and returned with [`Workspace::give`] (the
//! `Tape` does both automatically once built via `Tape::with_workspace`).
//! Keying by length rather than shape is deliberate — an `n x k` gradient
//! and a `k x n` transpose can share storage — and is safe because every
//! take either zero-fills or copy-overwrites the recycled buffer, so pooled
//! and non-pooled runs are bitwise identical.
//!
//! The pool is `Rc<RefCell<...>>` inside and cheap to clone: one training
//! run shares a single `Workspace` between the training-mode forward, the
//! backward pass and the eval-mode forward of every epoch.
//!
//! ## `RDD_WORKSPACE` contract
//!
//! `Workspace::new()` consults the `RDD_WORKSPACE` environment variable once
//! per process (latched, like `RDD_THREADS`): `off`/`0`/`false`/`no`
//! disables pooling — every take falls back to a plain allocation and every
//! give drops the buffer — and anything unparseable is reported through the
//! `rdd-obs` recorder and ignored. [`Workspace::with_pooling`] overrides the
//! environment for tests that need both modes in one process.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::OnceLock;

use rdd_obs::{CounterCell, GaugeCell};

use crate::matrix::Matrix;

/// Pool telemetry (no-ops unless `RDD_TRACE` enables the recorder):
/// buffers served from the free-list, takes that fell through to the
/// allocator, and the peak bytes parked in the free-list.
static OBS_HITS: CounterCell = CounterCell::new("workspace.hits");
static OBS_MISSES: CounterCell = CounterCell::new("workspace.misses");
static OBS_BYTES_RETAINED: GaugeCell = GaugeCell::new("workspace.bytes_retained");

/// Whether `RDD_WORKSPACE` leaves pooling enabled (the default). Latched
/// once per process; an unparseable value warns through `rdd-obs` (trace
/// when tracing is on, stderr otherwise) and keeps the default.
pub fn workspace_env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        rdd_obs::env::parse_with("RDD_WORKSPACE", "on|off", |v| {
            match v.trim().to_ascii_lowercase().as_str() {
                "" | "on" | "1" | "true" | "yes" => Some(true),
                "off" | "0" | "false" | "no" => Some(false),
                _ => None,
            }
        })
        .unwrap_or(true)
    })
}

/// Cumulative pool statistics for one [`Workspace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Takes served from the free-list.
    pub hits: u64,
    /// Takes that had to allocate (pool empty for that size class).
    pub misses: u64,
    /// Bytes currently parked in the free-list.
    pub retained_bytes: usize,
}

#[derive(Default)]
struct PoolInner {
    /// Free-list keyed by element count. All buffers under key `k` have
    /// `len() == k`.
    free: HashMap<usize, Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
    retained_bytes: usize,
}

/// A shape-keyed pool of `Vec<f32>` buffers shared across the tapes of one
/// training run. Cheap to clone (`Rc` inside); see the module docs for the
/// pooling contract.
#[derive(Clone)]
pub struct Workspace {
    inner: Rc<RefCell<PoolInner>>,
    pooling: bool,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// A workspace whose pooling is gated by `RDD_WORKSPACE` (enabled
    /// unless the variable says `off`).
    pub fn new() -> Self {
        Self::with_pooling(workspace_env_enabled())
    }

    /// A workspace with pooling explicitly on or off, ignoring the
    /// environment. With pooling off every take allocates and every give
    /// drops, which is the reference behavior the equivalence tests compare
    /// against.
    pub fn with_pooling(pooling: bool) -> Self {
        Self {
            inner: Rc::new(RefCell::new(PoolInner::default())),
            pooling,
        }
    }

    /// Whether this workspace actually pools buffers.
    pub fn pooling(&self) -> bool {
        self.pooling
    }

    /// Pop a buffer of exactly `len` elements, counting hit/miss. `None`
    /// means the caller must allocate (pooling off, zero-sized, or empty
    /// size class).
    fn take_raw(&self, len: usize) -> Option<Vec<f32>> {
        if !self.pooling || len == 0 {
            return None;
        }
        let mut inner = self.inner.borrow_mut();
        match inner.free.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                inner.hits += 1;
                inner.retained_bytes -= len * std::mem::size_of::<f32>();
                OBS_HITS.add(1);
                Some(buf)
            }
            None => {
                inner.misses += 1;
                OBS_MISSES.add(1);
                None
            }
        }
    }

    /// Park `buf` in the free-list (drops it when pooling is off or the
    /// buffer is empty).
    fn give_raw(&self, buf: Vec<f32>) {
        let len = buf.len();
        if !self.pooling || len == 0 {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        inner.free.entry(len).or_default().push(buf);
        inner.retained_bytes += len * std::mem::size_of::<f32>();
        OBS_BYTES_RETAINED.record_max(inner.retained_bytes as u64);
    }

    /// A `rows x cols` matrix of zeros, recycled when possible.
    pub fn take_zeroed(&self, rows: usize, cols: usize) -> Matrix {
        match self.take_raw(rows * cols) {
            Some(mut buf) => {
                buf.fill(0.0);
                Matrix::from_vec(rows, cols, buf)
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    /// A `rows x cols` matrix whose contents are unspecified (recycled
    /// bytes when pooled, zeros otherwise). Only for consumers that
    /// overwrite every element before reading any — the fully-overwriting
    /// kernels (`matmul_a_bt_into`, `hcat_into`) qualify.
    pub fn take_uninit(&self, rows: usize, cols: usize) -> Matrix {
        match self.take_raw(rows * cols) {
            Some(buf) => Matrix::from_vec(rows, cols, buf),
            None => Matrix::zeros(rows, cols),
        }
    }

    /// A copy of `src`, recycled when possible.
    pub fn take_copy(&self, src: &Matrix) -> Matrix {
        match self.take_raw(src.len()) {
            Some(mut buf) => {
                buf.copy_from_slice(src.as_slice());
                Matrix::from_vec(src.rows(), src.cols(), buf)
            }
            None => src.clone(),
        }
    }

    /// An empty `Vec<f32>` with capacity for at least `len` elements
    /// (dropout masks, attention coefficient caches). Pair with
    /// [`Workspace::give_vec`] once the vec holds exactly `len` elements
    /// again, or the buffer migrates to a different size class.
    pub fn take_vec(&self, len: usize) -> Vec<f32> {
        match self.take_raw(len) {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::with_capacity(len),
        }
    }

    /// A zero-filled `Vec<f32>` of exactly `len` elements.
    pub fn take_vec_zeroed(&self, len: usize) -> Vec<f32> {
        match self.take_raw(len) {
            Some(mut buf) => {
                buf.fill(0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Return a matrix's storage to the pool.
    pub fn give(&self, m: Matrix) {
        self.give_raw(m.into_vec());
    }

    /// Return a raw buffer to the pool (keyed by its current length).
    pub fn give_vec(&self, v: Vec<f32>) {
        self.give_raw(v);
    }

    /// Return a whole gradient set (as produced by `Tape::backward`) to the
    /// pool. Call after the optimizer has consumed the gradients.
    pub fn give_grads(&self, grads: Vec<Option<Matrix>>) {
        for g in grads.into_iter().flatten() {
            self.give(g);
        }
    }

    /// Cumulative hit/miss/retention statistics for this workspace.
    pub fn stats(&self) -> WorkspaceStats {
        let inner = self.inner.borrow();
        WorkspaceStats {
            hits: inner.hits,
            misses: inner.misses,
            retained_bytes: inner.retained_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_reuses_storage() {
        let ws = Workspace::with_pooling(true);
        let m = ws.take_zeroed(4, 3);
        assert_eq!(ws.stats().misses, 1);
        ws.give(m);
        assert_eq!(ws.stats().retained_bytes, 48);
        let m2 = ws.take_zeroed(3, 4); // same element count, new shape
        assert_eq!(ws.stats().hits, 1);
        assert_eq!(m2.shape(), (3, 4));
        assert!(m2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_copy_overwrites_recycled_contents() {
        let ws = Workspace::with_pooling(true);
        let mut dirty = ws.take_zeroed(2, 2);
        dirty.as_mut_slice().fill(7.0);
        ws.give(dirty);
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let copy = ws.take_copy(&src);
        assert_eq!(ws.stats().hits, 1);
        assert_eq!(copy.as_slice(), src.as_slice());
    }

    #[test]
    fn pooling_off_never_retains() {
        let ws = Workspace::with_pooling(false);
        let m = ws.take_zeroed(8, 8);
        ws.give(m);
        let s = ws.stats();
        assert_eq!((s.hits, s.misses, s.retained_bytes), (0, 0, 0));
    }

    #[test]
    fn zero_sized_buffers_bypass_the_pool() {
        let ws = Workspace::with_pooling(true);
        let m = ws.take_zeroed(0, 5);
        ws.give(m);
        let s = ws.stats();
        assert_eq!((s.hits, s.misses, s.retained_bytes), (0, 0, 0));
    }

    #[test]
    fn clones_share_one_pool() {
        let ws = Workspace::with_pooling(true);
        let ws2 = ws.clone();
        ws.give(Matrix::zeros(2, 2));
        let m = ws2.take_zeroed(2, 2);
        assert_eq!(ws.stats().hits, 1);
        assert_eq!(m.len(), 4);
    }
}
