//! Tape-based reverse-mode automatic differentiation.
//!
//! The engine is a classic Wengert list: every operation eagerly computes its
//! forward value and appends a node recording its inputs; [`Tape::backward`]
//! then walks the list in reverse, accumulating gradients. The op set is
//! exactly what GCN-family models and the RDD losses need — nothing more.
//!
//! Sparse matrices (the normalized adjacency Â and the feature matrix X) are
//! *constants* of the computation, shared into the tape via `Rc<CsrMatrix>`;
//! only dense values are differentiated through.
//!
//! Gradient correctness for every op is checked against central finite
//! differences in this module's tests and, property-based, in
//! `tests/grad_check.rs` of this crate.

use std::rc::Rc;

use rand::Rng;

use crate::matrix::{log_softmax_in_place, softmax_in_place, Matrix};
use crate::simd;
use crate::sparse::CsrMatrix;
use crate::workspace::Workspace;

/// Handle to a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// Input or parameter. `param` is the caller's parameter slot, used to
    /// export gradients after `backward`.
    Leaf { param: Option<usize> },
    /// Dense product `a @ b`.
    Matmul(Var, Var),
    /// Sparse-constant product `sp @ x`. `symmetric` selects the cheaper
    /// backward (`sp^T == sp` holds for the normalized adjacency).
    Spmm {
        sp: Rc<CsrMatrix>,
        x: Var,
        symmetric: bool,
    },
    /// Element-wise sum of two same-shaped matrices.
    Add(Var, Var),
    /// Broadcast add of a `1 x d` bias row onto an `n x d` matrix.
    AddBias { x: Var, bias: Var },
    /// Rectified linear unit.
    Relu(Var),
    /// Inverted dropout; `mask` entries are `0` or `1/(1-p)`.
    Dropout { x: Var, mask: Vec<f32> },
    /// Scalar multiple.
    Scale(Var, f32),
    /// Column-wise concatenation.
    ConcatCols(Vec<Var>),
    /// Row-wise log-softmax.
    LogSoftmax(Var),
    /// Row-wise softmax.
    Softmax(Var),
    /// Exponential linear unit with `alpha = 1`.
    Elu(Var),
    /// Single-head graph attention (Veličković et al. 2018):
    /// `out_i = Σ_{j∈N(i)} α_ij · h_j` with
    /// `α_ij = softmax_j(LeakyReLU(a_l·h_i + a_r·h_j))`.
    /// `adj` fixes the neighborhood structure (self-loops included);
    /// `alpha` and `z` cache the per-edge coefficients (aligned with the
    /// CSR entry order) for the backward pass.
    GraphAttention {
        adj: Rc<CsrMatrix>,
        h: Var,
        a_l: Var,
        a_r: Var,
        slope: f32,
        alpha: Vec<f32>,
        z: Vec<f32>,
    },
    /// Mean negative log-likelihood over `idx`: `-(1/|idx|) Σ logp[i, y_i]`.
    NllMasked {
        logp: Var,
        labels: Rc<Vec<usize>>,
        idx: Rc<Vec<usize>>,
    },
    /// Mean squared row distance to a constant target over `idx`:
    /// `(1/|idx|) Σ ‖x_i − t_i‖²`. This is RDD's L2 distillation loss.
    MseRows {
        x: Var,
        target: Rc<Matrix>,
        idx: Rc<Vec<usize>>,
    },
    /// Soft-label cross-entropy over `idx`:
    /// `-(1/|idx|) Σ_i Σ_c T[i,c] · logp[i,c]` with a constant target
    /// distribution `T` (teacher softmax). Hinton-style distillation.
    /// With `weights` (aligned with `idx`) the mean becomes
    /// `-(1/Σw) Σ_i w_i Σ_c T[i,c] · logp[i,c]` — the reliability-weighted
    /// KD term of the MLP distillation loss.
    SoftCeMasked {
        logp: Var,
        target: Rc<Matrix>,
        idx: Rc<Vec<usize>>,
        weights: Option<Rc<Vec<f32>>>,
    },
    /// Weighted mean squared difference across edges:
    /// `(1/Σw) Σ_{(i,j)} w_ij · ‖x_i − x_j‖²`. This is RDD's reliable-edge
    /// Laplacian regularizer; `weights` is `None` for the unweighted form
    /// and `Some` for the degree-normalized form (`w_ij = 1/√(d_i·d_j)`).
    EdgeReg {
        x: Var,
        edges: Rc<Vec<(u32, u32)>>,
        weights: Option<Rc<Vec<f32>>>,
    },
}

struct Node {
    value: Matrix,
    op: Op,
}

/// A single forward computation. Build one per training step.
///
/// A tape built with [`Tape::with_workspace`] draws every node value and
/// every backward gradient accumulator from the workspace pool and returns
/// them on drop, so steady-state epochs run without allocator traffic. A
/// plain [`Tape::new`] allocates freshly — both produce bitwise-identical
/// numerics (recycled buffers are always zero-filled or copy-overwritten
/// before use).
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    ws: Option<Workspace>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty tape whose buffers come from (and return to) `ws`.
    pub fn with_workspace(ws: &Workspace) -> Self {
        Self {
            nodes: Vec::new(),
            ws: Some(ws.clone()),
        }
    }

    /// A `rows x cols` zero matrix, pooled when a workspace is attached.
    fn alloc_zeros(&self, rows: usize, cols: usize) -> Matrix {
        match &self.ws {
            Some(ws) => ws.take_zeroed(rows, cols),
            None => Matrix::zeros(rows, cols),
        }
    }

    /// A `rows x cols` matrix whose every element the caller overwrites.
    fn alloc_uninit(&self, rows: usize, cols: usize) -> Matrix {
        match &self.ws {
            Some(ws) => ws.take_uninit(rows, cols),
            None => Matrix::zeros(rows, cols),
        }
    }

    /// A copy of `src`, pooled when a workspace is attached.
    fn alloc_copy(&self, src: &Matrix) -> Matrix {
        match &self.ws {
            Some(ws) => ws.take_copy(src),
            None => src.clone(),
        }
    }

    /// A `1 x 1` matrix holding `v` (loss nodes and the backward seed).
    fn alloc_scalar(&self, v: f32) -> Matrix {
        let mut m = self.alloc_uninit(1, 1);
        m.set(0, 0, v);
        m
    }

    /// An empty `Vec<f32>` with capacity `len`, pooled when possible.
    fn alloc_vec(&self, len: usize) -> Vec<f32> {
        match &self.ws {
            Some(ws) => ws.take_vec(len),
            None => Vec::with_capacity(len),
        }
    }

    /// A zero-filled `Vec<f32>` of length `len`, pooled when possible.
    fn alloc_vec_zeroed(&self, len: usize) -> Vec<f32> {
        match &self.ws {
            Some(ws) => ws.take_vec_zeroed(len),
            None => vec![0.0; len],
        }
    }

    /// Return a matrix to the pool (drop when no workspace is attached).
    fn recycle(&self, m: Matrix) {
        if let Some(ws) = &self.ws {
            ws.give(m);
        }
    }

    /// Return a raw buffer to the pool.
    fn recycle_vec(&self, v: Vec<f32>) {
        if let Some(ws) = &self.ws {
            ws.give_vec(v);
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The scalar value of a `1x1` node (losses).
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar node");
        m.get(0, 0)
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Record a non-trainable input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf { param: None })
    }

    /// Record a trainable parameter occupying the caller's slot `param_idx`.
    pub fn param(&mut self, param_idx: usize, value: Matrix) -> Var {
        self.push(
            value,
            Op::Leaf {
                param: Some(param_idx),
            },
        )
    }

    /// Record a trainable parameter by *copying* `value` onto the tape —
    /// the pooled twin of [`Tape::param`], so models need not clone their
    /// weights into every epoch's tape.
    pub fn param_of(&mut self, param_idx: usize, value: &Matrix) -> Var {
        let v = self.alloc_copy(value);
        self.push(
            v,
            Op::Leaf {
                param: Some(param_idx),
            },
        )
    }

    /// Dense matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.alloc_zeros(self.value(a).rows(), self.value(b).cols());
        self.value(a).matmul_into(self.value(b), &mut value);
        self.push(value, Op::Matmul(a, b))
    }

    /// Sparse-constant product `sp @ x`. Set `symmetric` when `sp^T == sp`.
    pub fn spmm(&mut self, sp: &Rc<CsrMatrix>, x: Var, symmetric: bool) -> Var {
        let mut value = self.alloc_zeros(sp.rows(), self.value(x).cols());
        sp.spmm_into(self.value(x), &mut value);
        self.push(
            value,
            Op::Spmm {
                sp: Rc::clone(sp),
                x,
                symmetric,
            },
        )
    }

    /// Element-wise sum (residual connections).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.alloc_copy(self.value(a));
        value.add_assign(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Broadcast a `1 x d` bias row over the rows of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let (xm, bm) = (self.value(x), self.value(bias));
        assert_eq!(bm.rows(), 1, "bias must be a row vector");
        assert_eq!(bm.cols(), xm.cols(), "bias width mismatch");
        let mut value = self.alloc_copy(xm);
        let tier = simd::active();
        for i in 0..value.rows() {
            simd::add_assign(tier, value.row_mut(i), bm.row(0));
        }
        self.push(value, Op::AddBias { x, bias })
    }

    /// ReLU activation.
    pub fn relu(&mut self, x: Var) -> Var {
        let mut value = self.alloc_copy(self.value(x));
        simd::relu_in_place(simd::active(), value.as_mut_slice());
        self.push(value, Op::Relu(x))
    }

    /// Inverted dropout with drop probability `p`. `p == 0` is the identity.
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut impl Rng) -> Var {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        if p == 0.0 {
            return x;
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let n = self.value(x).len();
        let mut mask = self.alloc_vec(n);
        for _ in 0..n {
            mask.push(if rng.gen::<f32>() < keep { scale } else { 0.0 });
        }
        let mut value = self.alloc_copy(self.value(x));
        simd::mul_assign(simd::active(), value.as_mut_slice(), &mask);
        self.push(value, Op::Dropout { x, mask })
    }

    /// Scalar multiple `c * x` (loss weighting: works on any shape).
    pub fn scale(&mut self, x: Var, c: f32) -> Var {
        let mut value = self.alloc_copy(self.value(x));
        value.scale_assign(c);
        self.push(value, Op::Scale(x, c))
    }

    /// Column-wise concatenation (JK-Net / DenseGCN aggregators).
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of zero parts");
        let rows = self.value(parts[0]).rows();
        let cols: usize = parts.iter().map(|&v| self.value(v).cols()).sum();
        let mut value = self.alloc_uninit(rows, cols);
        let mats: Vec<&Matrix> = parts.iter().map(|&v| self.value(v)).collect();
        Matrix::hcat_into(&mats, &mut value);
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, x: Var) -> Var {
        let mut value = self.alloc_copy(self.value(x));
        for i in 0..value.rows() {
            log_softmax_in_place(value.row_mut(i));
        }
        self.push(value, Op::LogSoftmax(x))
    }

    /// Row-wise softmax (used when a loss needs probabilities, e.g. the
    /// edge regularizer over predicted label distributions).
    pub fn softmax(&mut self, x: Var) -> Var {
        let mut value = self.alloc_copy(self.value(x));
        for i in 0..value.rows() {
            softmax_in_place(value.row_mut(i));
        }
        self.push(value, Op::Softmax(x))
    }

    /// ELU activation (`alpha = 1`), the nonlinearity GAT uses.
    pub fn elu(&mut self, x: Var) -> Var {
        let mut value = self.alloc_copy(self.value(x));
        for v in value.as_mut_slice() {
            if *v <= 0.0 {
                *v = v.exp_m1();
            }
        }
        self.push(value, Op::Elu(x))
    }

    /// Single-head graph attention over the fixed neighborhood structure
    /// `adj` (a CSR matrix whose stored pattern — values ignored — lists
    /// each node's neighbors, self-loops included).
    ///
    /// * `h` — `n x d` transformed node features (`W·x`, differentiable);
    /// * `a_l`, `a_r` — `1 x d` attention vectors (differentiable);
    /// * `slope` — LeakyReLU negative slope (GAT uses 0.2).
    pub fn graph_attention(
        &mut self,
        adj: &Rc<CsrMatrix>,
        h: Var,
        a_l: Var,
        a_r: Var,
        slope: f32,
    ) -> Var {
        let hv = self.value(h);
        let n = hv.rows();
        let d = hv.cols();
        assert_eq!(adj.shape(), (n, n), "attention adjacency shape mismatch");
        let alv = self.value(a_l);
        let arv = self.value(a_r);
        assert_eq!(alv.shape(), (1, d), "a_l must be 1 x d");
        assert_eq!(arv.shape(), (1, d), "a_r must be 1 x d");

        // Per-node projections s_l[i] = a_l·h_i, s_r[i] = a_r·h_i.
        let dot = |row: &[f32], a: &[f32]| -> f32 { row.iter().zip(a).map(|(&x, &y)| x * y).sum() };
        let mut s_l = self.alloc_vec(n);
        let mut s_r = self.alloc_vec(n);
        for i in 0..n {
            s_l.push(dot(hv.row(i), alv.row(0)));
            s_r.push(dot(hv.row(i), arv.row(0)));
        }

        let mut z = self.alloc_vec(adj.nnz());
        let mut alpha = self.alloc_vec(adj.nnz());
        let mut out = self.alloc_zeros(n, d);
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let (cols, _) = adj.row(i);
            let start = z.len();
            let mut max_e = f32::NEG_INFINITY;
            for &j in cols {
                let raw = s_l[i] + s_r[j as usize];
                let e = if raw > 0.0 { raw } else { slope * raw };
                z.push(raw);
                max_e = max_e.max(e);
            }
            // Softmax over the neighborhood (empty rows produce no output).
            let mut denom = 0.0f32;
            for (k, &j) in cols.iter().enumerate() {
                let raw = z[start + k];
                let e = if raw > 0.0 { raw } else { slope * raw };
                let w = (e - max_e).exp();
                alpha.push(w);
                denom += w;
                let _ = j;
            }
            let out_row = out.row_mut(i);
            for (k, &j) in cols.iter().enumerate() {
                let a = alpha[start + k] / denom;
                alpha[start + k] = a;
                for (o, &hj) in out_row.iter_mut().zip(hv.row(j as usize)) {
                    *o += a * hj;
                }
            }
        }
        self.recycle_vec(s_l);
        self.recycle_vec(s_r);
        self.push(
            out,
            Op::GraphAttention {
                adj: Rc::clone(adj),
                h,
                a_l,
                a_r,
                slope,
                alpha,
                z,
            },
        )
    }

    /// Mean cross-entropy over the rows listed in `idx`, given log-softmax
    /// inputs. Empty `idx` yields a constant-zero loss.
    pub fn nll_masked(&mut self, logp: Var, labels: Rc<Vec<usize>>, idx: Rc<Vec<usize>>) -> Var {
        let lp = self.value(logp);
        let loss = if idx.is_empty() {
            0.0
        } else {
            let s: f32 = idx.iter().map(|&i| -lp.get(i, labels[i])).sum();
            s / idx.len() as f32
        };
        let value = self.alloc_scalar(loss);
        self.push(value, Op::NllMasked { logp, labels, idx })
    }

    /// Mean squared distance between rows of `x` and the constant `target`
    /// over `idx` (RDD's L2 distillation term). Empty `idx` yields zero.
    pub fn mse_rows(&mut self, x: Var, target: Rc<Matrix>, idx: Rc<Vec<usize>>) -> Var {
        let xm = self.value(x);
        assert_eq!(xm.shape(), target.shape(), "mse_rows target shape mismatch");
        let loss = if idx.is_empty() {
            0.0
        } else {
            let s: f32 = idx
                .iter()
                .map(|&i| {
                    xm.row(i)
                        .iter()
                        .zip(target.row(i))
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum::<f32>()
                })
                .sum();
            s / idx.len() as f32
        };
        let value = self.alloc_scalar(loss);
        self.push(value, Op::MseRows { x, target, idx })
    }

    /// Soft-label cross-entropy over the rows in `idx` given log-softmax
    /// inputs and a constant row-stochastic `target`. Empty `idx` is zero.
    pub fn soft_ce_masked(&mut self, logp: Var, target: Rc<Matrix>, idx: Rc<Vec<usize>>) -> Var {
        self.soft_ce_impl(logp, target, idx, None)
    }

    /// Per-row weighted variant of [`Tape::soft_ce_masked`]:
    /// `-(1/Σw) Σ_i w_i Σ_c T[i,c] · logp[i,c]` with `weights[j]` applied
    /// to row `idx[j]`. This is the reliability-weighted KD term of the MLP
    /// distillation objective: `w_i` indicates membership in (and confidence
    /// over) the checked set `V_r`, and the `Σw` normalization is the
    /// `|V_r|`-checked-node averaging. A non-positive `Σw` yields zero.
    pub fn soft_ce_weighted(
        &mut self,
        logp: Var,
        target: Rc<Matrix>,
        idx: Rc<Vec<usize>>,
        weights: Rc<Vec<f32>>,
    ) -> Var {
        assert_eq!(idx.len(), weights.len(), "idx/weight length mismatch");
        self.soft_ce_impl(logp, target, idx, Some(weights))
    }

    fn soft_ce_impl(
        &mut self,
        logp: Var,
        target: Rc<Matrix>,
        idx: Rc<Vec<usize>>,
        weights: Option<Rc<Vec<f32>>>,
    ) -> Var {
        let lp = self.value(logp);
        assert_eq!(
            lp.shape(),
            target.shape(),
            "soft_ce_masked target shape mismatch"
        );
        let total_w = match &weights {
            Some(w) => w.iter().sum::<f32>(),
            None => idx.len() as f32,
        };
        let loss = if idx.is_empty() || total_w <= 0.0 {
            0.0
        } else {
            let s: f32 = idx
                .iter()
                .enumerate()
                .map(|(j, &i)| {
                    let w = weights.as_ref().map_or(1.0, |w| w[j]);
                    -w * lp
                        .row(i)
                        .iter()
                        .zip(target.row(i))
                        .map(|(&l, &t)| t * l)
                        .sum::<f32>()
                })
                .sum();
            s / total_w
        };
        let value = self.alloc_scalar(loss);
        self.push(
            value,
            Op::SoftCeMasked {
                logp,
                target,
                idx,
                weights,
            },
        )
    }

    /// Mean squared row difference across `edges` (RDD's reliable-edge
    /// regularizer). Empty `edges` yields zero.
    pub fn edge_reg(&mut self, x: Var, edges: Rc<Vec<(u32, u32)>>) -> Var {
        self.edge_reg_impl(x, edges, None)
    }

    /// Weighted variant of [`Tape::edge_reg`]:
    /// `(1/Σw) Σ w_ij · ‖x_i − x_j‖²`. Degree-normalized weights
    /// (`w_ij = 1/√(d_i·d_j)`) keep hub nodes from dominating the pull.
    pub fn edge_reg_weighted(
        &mut self,
        x: Var,
        edges: Rc<Vec<(u32, u32)>>,
        weights: Rc<Vec<f32>>,
    ) -> Var {
        assert_eq!(edges.len(), weights.len(), "edge/weight length mismatch");
        self.edge_reg_impl(x, edges, Some(weights))
    }

    fn edge_reg_impl(
        &mut self,
        x: Var,
        edges: Rc<Vec<(u32, u32)>>,
        weights: Option<Rc<Vec<f32>>>,
    ) -> Var {
        let xm = self.value(x);
        let total_w = match &weights {
            Some(w) => w.iter().sum::<f32>(),
            None => edges.len() as f32,
        };
        let loss = if edges.is_empty() || total_w <= 0.0 {
            0.0
        } else {
            let s: f32 = edges
                .iter()
                .enumerate()
                .map(|(e, &(i, j))| {
                    let w = weights.as_ref().map_or(1.0, |w| w[e]);
                    w * xm
                        .row(i as usize)
                        .iter()
                        .zip(xm.row(j as usize))
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum::<f32>()
                })
                .sum();
            s / total_w
        };
        let value = self.alloc_scalar(loss);
        self.push(value, Op::EdgeReg { x, edges, weights })
    }

    /// Sum of scalar losses: `Σ cᵢ · lossᵢ`.
    pub fn weighted_sum(&mut self, terms: &[(Var, f32)]) -> Var {
        assert!(!terms.is_empty(), "weighted_sum of zero terms");
        let mut acc = self.scale(terms[0].0, terms[0].1);
        for &(v, c) in &terms[1..] {
            let scaled = self.scale(v, c);
            acc = self.add(acc, scaled);
        }
        acc
    }

    /// Reverse pass from the scalar node `loss`. Returns per-parameter-slot
    /// gradients; slots never touched by the graph get `None`.
    pub fn backward(&self, loss: Var, n_params: usize) -> Vec<Option<Matrix>> {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(self.alloc_scalar(1.0));

        for id in (0..=loss.0).rev() {
            let Some(g) = grads[id].take() else { continue };
            match &self.nodes[id].op {
                Op::Leaf { .. } => {
                    grads[id] = Some(g); // keep for param export
                }
                Op::Matmul(a, b) => {
                    let mut da = self.alloc_uninit(g.rows(), self.value(*b).rows());
                    g.matmul_a_bt_into(self.value(*b), &mut da);
                    let mut db = self.alloc_zeros(self.value(*a).cols(), g.cols());
                    self.value(*a).matmul_at_b_into(&g, &mut db);
                    self.accum(&mut grads, *a, da);
                    self.accum(&mut grads, *b, db);
                    self.recycle(g);
                }
                Op::Spmm { sp, x, symmetric } => {
                    let xv = self.value(*x);
                    let mut dx = self.alloc_zeros(xv.rows(), xv.cols());
                    if *symmetric {
                        sp.spmm_into(&g, &mut dx);
                    } else {
                        sp.spmm_t_into(&g, &mut dx);
                    }
                    self.accum(&mut grads, *x, dx);
                    self.recycle(g);
                }
                Op::Add(a, b) => {
                    let ga = self.alloc_copy(&g);
                    self.accum(&mut grads, *a, ga);
                    self.accum(&mut grads, *b, g);
                }
                Op::AddBias { x, bias } => {
                    // Bias gradient: column sums of g.
                    let mut db = self.alloc_zeros(1, g.cols());
                    let tier = simd::active();
                    for i in 0..g.rows() {
                        simd::add_assign(tier, db.row_mut(0), g.row(i));
                    }
                    self.accum(&mut grads, *bias, db);
                    self.accum(&mut grads, *x, g);
                }
                Op::Relu(x) => {
                    let xv = self.value(*x);
                    let mut dx = g;
                    simd::relu_bwd(simd::active(), dx.as_mut_slice(), xv.as_slice());
                    self.accum(&mut grads, *x, dx);
                }
                Op::Dropout { x, mask } => {
                    let mut dx = g;
                    simd::mul_assign(simd::active(), dx.as_mut_slice(), mask);
                    self.accum(&mut grads, *x, dx);
                }
                Op::Scale(x, c) => {
                    let mut dx = g;
                    dx.scale_assign(*c);
                    self.accum(&mut grads, *x, dx);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let pc = self.value(p).cols();
                        let mut dp = self.alloc_uninit(g.rows(), pc);
                        for i in 0..g.rows() {
                            dp.row_mut(i).copy_from_slice(&g.row(i)[off..off + pc]);
                        }
                        self.accum(&mut grads, p, dp);
                        off += pc;
                    }
                    self.recycle(g);
                }
                Op::Softmax(x) => {
                    // y = softmax(x); dx = y ⊙ (g − rowsum(g ⊙ y)).
                    let y = &self.nodes[id].value;
                    let mut dx = g;
                    let tier = simd::active();
                    for i in 0..dx.rows() {
                        simd::softmax_bwd_row(tier, dx.row_mut(i), y.row(i));
                    }
                    self.accum(&mut grads, *x, dx);
                }
                Op::LogSoftmax(x) => {
                    // y = x − logsumexp(x) row-wise; dx = g − softmax(x)·rowsum(g).
                    let y = &self.nodes[id].value;
                    let mut dx = g;
                    let tier = simd::active();
                    for i in 0..dx.rows() {
                        simd::log_softmax_bwd_row(tier, dx.row_mut(i), y.row(i));
                    }
                    self.accum(&mut grads, *x, dx);
                }
                Op::NllMasked { logp, labels, idx } => {
                    if idx.is_empty() {
                        self.recycle(g);
                        continue;
                    }
                    let scale = g.get(0, 0) / idx.len() as f32;
                    let lpv = self.value(*logp);
                    let mut dlp = self.alloc_zeros(lpv.rows(), lpv.cols());
                    for &i in idx.iter() {
                        let j = labels[i];
                        dlp.set(i, j, dlp.get(i, j) - scale);
                    }
                    self.accum(&mut grads, *logp, dlp);
                    self.recycle(g);
                }
                Op::MseRows { x, target, idx } => {
                    if idx.is_empty() {
                        self.recycle(g);
                        continue;
                    }
                    let scale = 2.0 * g.get(0, 0) / idx.len() as f32;
                    let xv = self.value(*x);
                    let mut dx = self.alloc_zeros(xv.rows(), xv.cols());
                    for &i in idx.iter() {
                        let trow = target.row(i);
                        let xrow = xv.row(i);
                        for ((d, &t), &xval) in dx.row_mut(i).iter_mut().zip(trow).zip(xrow) {
                            *d += scale * (xval - t);
                        }
                    }
                    self.accum(&mut grads, *x, dx);
                    self.recycle(g);
                }
                Op::Elu(x) => {
                    let xv = self.value(*x);
                    let mut dx = g;
                    for (dv, &v) in dx.as_mut_slice().iter_mut().zip(xv.as_slice()) {
                        if v <= 0.0 {
                            *dv *= v.exp();
                        }
                    }
                    self.accum(&mut grads, *x, dx);
                }
                Op::GraphAttention {
                    adj,
                    h,
                    a_l,
                    a_r,
                    slope,
                    alpha,
                    z,
                } => {
                    let hv = self.value(*h);
                    let alv = self.value(*a_l);
                    let arv = self.value(*a_r);
                    let n = hv.rows();
                    let d = hv.cols();
                    let mut dh = self.alloc_zeros(n, d);
                    let mut ds_l = self.alloc_vec_zeroed(n);
                    let mut ds_r = self.alloc_vec_zeroed(n);
                    let mut dalpha: Vec<f32> = Vec::new();
                    let mut cursor = 0usize;
                    #[allow(clippy::needless_range_loop)]
                    for i in 0..n {
                        let (cols, _) = adj.row(i);
                        let g_row = g.row(i);
                        // dα_ij = g_i · h_j; dh_j += α_ij g_i.
                        dalpha.clear();
                        dalpha.reserve(cols.len());
                        let mut weighted_sum = 0.0f32; // Σ_k α_ik dα_ik
                        for (k, &j) in cols.iter().enumerate() {
                            let a = alpha[cursor + k];
                            let hj = hv.row(j as usize);
                            let da: f32 = g_row.iter().zip(hj).map(|(&gv, &hvx)| gv * hvx).sum();
                            dalpha.push(da);
                            weighted_sum += a * da;
                            let dh_j = dh.row_mut(j as usize);
                            for (o, &gv) in dh_j.iter_mut().zip(g_row) {
                                *o += a * gv;
                            }
                        }
                        // Softmax backward then LeakyReLU backward.
                        for (k, &j) in cols.iter().enumerate() {
                            let a = alpha[cursor + k];
                            let de = a * (dalpha[k] - weighted_sum);
                            let raw = z[cursor + k];
                            let dz = if raw > 0.0 { de } else { *slope * de };
                            ds_l[i] += dz;
                            ds_r[j as usize] += dz;
                        }
                        cursor += cols.len();
                    }
                    // dh += ds_l ⊗ a_l + ds_r ⊗ a_r;
                    // da_l = Σ_i ds_l[i]·h_i, da_r likewise.
                    let mut da_l = self.alloc_zeros(1, d);
                    let mut da_r = self.alloc_zeros(1, d);
                    for i in 0..n {
                        let hi = hv.row(i);
                        let dh_i = dh.row_mut(i);
                        for c in 0..d {
                            dh_i[c] += ds_l[i] * alv.get(0, c) + ds_r[i] * arv.get(0, c);
                            da_l.set(0, c, da_l.get(0, c) + ds_l[i] * hi[c]);
                            da_r.set(0, c, da_r.get(0, c) + ds_r[i] * hi[c]);
                        }
                    }
                    self.recycle_vec(ds_l);
                    self.recycle_vec(ds_r);
                    self.accum(&mut grads, *h, dh);
                    self.accum(&mut grads, *a_l, da_l);
                    self.accum(&mut grads, *a_r, da_r);
                    self.recycle(g);
                }
                Op::SoftCeMasked {
                    logp,
                    target,
                    idx,
                    weights,
                } => {
                    let total_w = match weights {
                        Some(w) => w.iter().sum::<f32>(),
                        None => idx.len() as f32,
                    };
                    if idx.is_empty() || total_w <= 0.0 {
                        self.recycle(g);
                        continue;
                    }
                    let scale = g.get(0, 0) / total_w;
                    let lpv = self.value(*logp);
                    let mut dlp = self.alloc_zeros(lpv.rows(), lpv.cols());
                    for (j, &i) in idx.iter().enumerate() {
                        let w = weights.as_ref().map_or(1.0, |w| w[j]);
                        let trow = target.row(i);
                        for (d, &t) in dlp.row_mut(i).iter_mut().zip(trow) {
                            *d -= scale * w * t;
                        }
                    }
                    self.accum(&mut grads, *logp, dlp);
                    self.recycle(g);
                }
                Op::EdgeReg { x, edges, weights } => {
                    if edges.is_empty() {
                        self.recycle(g);
                        continue;
                    }
                    let total_w = match weights {
                        Some(w) => w.iter().sum::<f32>(),
                        None => edges.len() as f32,
                    };
                    if total_w <= 0.0 {
                        self.recycle(g);
                        continue;
                    }
                    let scale = 2.0 * g.get(0, 0) / total_w;
                    let xv = self.value(*x);
                    let mut dx = self.alloc_zeros(xv.rows(), xv.cols());
                    for (e, &(i, j)) in edges.iter().enumerate() {
                        let w = weights.as_ref().map_or(1.0, |w| w[e]);
                        let (i, j) = (i as usize, j as usize);
                        for c in 0..xv.cols() {
                            let diff = scale * w * (xv.get(i, c) - xv.get(j, c));
                            dx.set(i, c, dx.get(i, c) + diff);
                            dx.set(j, c, dx.get(j, c) - diff);
                        }
                    }
                    self.accum(&mut grads, *x, dx);
                    self.recycle(g);
                }
            }
        }

        // Export per-parameter-slot gradients.
        let mut out: Vec<Option<Matrix>> = (0..n_params).map(|_| None).collect();
        for (id, node) in self.nodes.iter().enumerate() {
            if let Op::Leaf { param: Some(slot) } = node.op {
                if let Some(g) = grads[id].take() {
                    match &mut out[slot] {
                        Some(acc) => {
                            acc.add_assign(&g);
                            self.recycle(g);
                        }
                        slot_ref @ None => *slot_ref = Some(g),
                    }
                }
            }
        }
        // Anything left in the scratch table (unused leaves) goes back to
        // the pool.
        for g in grads.into_iter().flatten() {
            self.recycle(g);
        }
        out
    }

    /// Accumulate gradient `g` into `v`'s slot, recycling `g` when it merges
    /// into an existing accumulator.
    fn accum(&self, grads: &mut [Option<Matrix>], v: Var, g: Matrix) {
        match &mut grads[v.0] {
            Some(acc) => {
                acc.add_assign(&g);
                self.recycle(g);
            }
            slot @ None => *slot = Some(g),
        }
    }
}

impl Drop for Tape {
    fn drop(&mut self) {
        let Some(ws) = self.ws.take() else { return };
        for node in self.nodes.drain(..) {
            ws.give(node.value);
            match node.op {
                Op::Dropout { mask, .. } => ws.give_vec(mask),
                Op::GraphAttention { alpha, z, .. } => {
                    ws.give_vec(alpha);
                    ws.give_vec(z);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    /// Central finite-difference check of `d loss / d param0` for a graph
    /// builder. `build` receives a tape and the parameter value and must
    /// return the scalar loss node.
    fn grad_check(param: &Matrix, build: &dyn Fn(&mut Tape, Matrix) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let loss = build(&mut tape, param.clone());
        let grads = tape.backward(loss, 1);
        let analytic = grads[0].as_ref().expect("param participates in loss");

        let h = 1e-2f32;
        for k in 0..param.len() {
            let mut plus = param.clone();
            plus.as_mut_slice()[k] += h;
            let mut tp = Tape::new();
            let lp = build(&mut tp, plus);
            let fp = tp.scalar(lp);

            let mut minus = param.clone();
            minus.as_mut_slice()[k] -= h;
            let mut tm = Tape::new();
            let lm = build(&mut tm, minus);
            let fm = tm.scalar(lm);

            let numeric = (fp - fm) / (2.0 * h);
            let a = analytic.as_slice()[k];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {k}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn matmul_gradient() {
        let mut rng = seeded_rng(7);
        let w = crate::init::uniform(3, 2, 1.0, &mut rng);
        let a = crate::init::uniform(4, 3, 1.0, &mut rng);
        grad_check(
            &w,
            &|t, p| {
                let av = t.constant(a.clone());
                let pv = t.param(0, p);
                let c = t.matmul(av, pv);
                // Scalar: sum of squares via mse against zeros over all rows.
                let target = Rc::new(Matrix::zeros(4, 2));
                let idx = Rc::new((0..4).collect());
                t.mse_rows(c, target, idx)
            },
            2e-2,
        );
    }

    #[test]
    fn spmm_gradient() {
        let sp = Rc::new(CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 0.5),
                (0, 1, 0.5),
                (1, 1, 1.0),
                (2, 0, 0.3),
                (2, 2, 0.7),
            ],
        ));
        let mut rng = seeded_rng(8);
        let x = crate::init::uniform(3, 2, 1.0, &mut rng);
        grad_check(
            &x,
            &|t, p| {
                let pv = t.param(0, p);
                let c = t.spmm(&sp, pv, false);
                let target = Rc::new(Matrix::full(3, 2, 0.1));
                let idx = Rc::new((0..3).collect());
                t.mse_rows(c, target, idx)
            },
            2e-2,
        );
    }

    #[test]
    fn relu_logsoftmax_nll_gradient() {
        let mut rng = seeded_rng(9);
        let x = crate::init::uniform(4, 3, 1.0, &mut rng);
        let labels = Rc::new(vec![0usize, 2, 1, 0]);
        let idx = Rc::new(vec![0usize, 1, 3]);
        grad_check(
            &x,
            &|t, p| {
                let pv = t.param(0, p);
                let r = t.relu(pv);
                let lp = t.log_softmax(r);
                t.nll_masked(lp, Rc::clone(&labels), Rc::clone(&idx))
            },
            3e-2,
        );
    }

    #[test]
    fn edge_reg_gradient() {
        let mut rng = seeded_rng(10);
        let x = crate::init::uniform(4, 2, 1.0, &mut rng);
        let edges = Rc::new(vec![(0u32, 1u32), (2, 3), (0, 3)]);
        grad_check(
            &x,
            &|t, p| {
                let pv = t.param(0, p);
                t.edge_reg(pv, Rc::clone(&edges))
            },
            2e-2,
        );
    }

    #[test]
    fn soft_ce_weighted_gradient() {
        let mut rng = seeded_rng(23);
        let x = crate::init::uniform(4, 3, 1.0, &mut rng);
        let target = Rc::new(Matrix::from_vec(
            4,
            3,
            vec![
                0.7, 0.2, 0.1, //
                0.1, 0.8, 0.1, //
                0.3, 0.3, 0.4, //
                0.2, 0.5, 0.3,
            ],
        ));
        let idx = Rc::new(vec![0usize, 2, 3]);
        let weights = Rc::new(vec![1.0f32, 0.25, 2.0]);
        grad_check(
            &x,
            &|t, p| {
                let pv = t.param(0, p);
                let lp = t.log_softmax(pv);
                t.soft_ce_weighted(lp, Rc::clone(&target), Rc::clone(&idx), Rc::clone(&weights))
            },
            3e-2,
        );
    }

    #[test]
    fn soft_ce_uniform_weights_match_masked_bitwise() {
        let mut rng = seeded_rng(24);
        let x = crate::init::uniform(5, 3, 1.0, &mut rng);
        let target = Rc::new(Matrix::full(5, 3, 1.0 / 3.0));
        let idx = Rc::new(vec![0usize, 1, 4]);
        let mut t1 = Tape::new();
        let p1 = t1.param(0, x.clone());
        let lp1 = t1.log_softmax(p1);
        let m = t1.soft_ce_masked(lp1, Rc::clone(&target), Rc::clone(&idx));
        let mut t2 = Tape::new();
        let p2 = t2.param(0, x.clone());
        let lp2 = t2.log_softmax(p2);
        let w = t2.soft_ce_weighted(
            lp2,
            Rc::clone(&target),
            Rc::clone(&idx),
            Rc::new(vec![1.0; idx.len()]),
        );
        assert_eq!(t1.scalar(m).to_bits(), t2.scalar(w).to_bits());
        let g1 = t1.backward(m, 1);
        let g2 = t2.backward(w, 1);
        let (a, b) = (g1[0].as_ref().unwrap(), g2[0].as_ref().unwrap());
        assert!(a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn soft_ce_weighted_zero_total_weight_is_zero_loss() {
        let mut t = Tape::new();
        let p = t.param(0, Matrix::full(2, 2, 0.5));
        let lp = t.log_softmax(p);
        let v = t.soft_ce_weighted(
            lp,
            Rc::new(Matrix::full(2, 2, 0.5)),
            Rc::new(vec![0usize, 1]),
            Rc::new(vec![0.0, 0.0]),
        );
        assert_eq!(t.scalar(v), 0.0);
        let grads = t.backward(v, 1);
        if let Some(g) = grads[0].as_ref() {
            assert!(g.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn add_bias_gradient() {
        let mut rng = seeded_rng(11);
        let b = crate::init::uniform(1, 3, 1.0, &mut rng);
        let x = crate::init::uniform(4, 3, 1.0, &mut rng);
        grad_check(
            &b,
            &|t, p| {
                let xv = t.constant(x.clone());
                let pv = t.param(0, p);
                let c = t.add_bias(xv, pv);
                let target = Rc::new(Matrix::zeros(4, 3));
                let idx = Rc::new((0..4).collect());
                t.mse_rows(c, target, idx)
            },
            2e-2,
        );
    }

    #[test]
    fn weighted_sum_combines_losses() {
        let mut t = Tape::new();
        let a = t.constant(Matrix::from_vec(1, 1, vec![2.0]));
        let b = t.constant(Matrix::from_vec(1, 1, vec![3.0]));
        let s = t.weighted_sum(&[(a, 1.0), (b, 10.0)]);
        assert!((t.scalar(s) - 32.0).abs() < 1e-6);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut t = Tape::new();
        let mut rng = seeded_rng(1);
        let x = t.constant(Matrix::full(2, 2, 1.0));
        let d = t.dropout(x, 0.0, &mut rng);
        assert_eq!(d, x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut t = Tape::new();
        let mut rng = seeded_rng(2);
        let x = t.constant(Matrix::full(100, 100, 1.0));
        let d = t.dropout(x, 0.5, &mut rng);
        let mean = t.value(d).sum() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean}");
    }

    #[test]
    fn empty_losses_are_zero_and_safe() {
        let mut t = Tape::new();
        let x = t.param(0, Matrix::full(2, 2, 1.0));
        let l1 = t.nll_masked(x, Rc::new(vec![0, 0]), Rc::new(vec![]));
        let l2 = t.mse_rows(x, Rc::new(Matrix::zeros(2, 2)), Rc::new(vec![]));
        let l3 = t.edge_reg(x, Rc::new(vec![]));
        let total = t.weighted_sum(&[(l1, 1.0), (l2, 1.0), (l3, 1.0)]);
        assert_eq!(t.scalar(total), 0.0);
        let grads = t.backward(total, 1);
        // No gradient flows from empty losses.
        assert!(grads[0].is_none() || grads[0].as_ref().unwrap().frob_sq() == 0.0);
    }

    #[test]
    fn grad_accumulates_across_reused_vars() {
        // loss = mse(x, 0) + mse(x, 0) should double the gradient.
        let x = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let mut t = Tape::new();
        let p = t.param(0, x.clone());
        let target = Rc::new(Matrix::zeros(1, 2));
        let idx: Rc<Vec<usize>> = Rc::new(vec![0]);
        let l1 = t.mse_rows(p, Rc::clone(&target), Rc::clone(&idx));
        let l2 = t.mse_rows(p, target, idx);
        let s = t.weighted_sum(&[(l1, 1.0), (l2, 1.0)]);
        let g = t.backward(s, 1);
        let g = g[0].as_ref().unwrap();
        // d/dx of 2·x² = 4x (mse over one row: ‖x‖², twice).
        assert!((g.get(0, 0) - 4.0).abs() < 1e-5);
        assert!((g.get(0, 1) + 8.0).abs() < 1e-5);
    }

    #[test]
    fn concat_cols_gradient_splits() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let mut t = Tape::new();
        let pa = t.param(0, a);
        let pb = t.param(1, b);
        let c = t.concat_cols(&[pa, pb]);
        let target = Rc::new(Matrix::zeros(2, 3));
        let idx = Rc::new(vec![0usize, 1]);
        let l = t.mse_rows(c, target, idx);
        let g = t.backward(l, 2);
        assert_eq!(g[0].as_ref().unwrap().shape(), (2, 1));
        assert_eq!(g[1].as_ref().unwrap().shape(), (2, 2));
        // dl/da = 2a/|idx| = a.
        assert!((g[0].as_ref().unwrap().get(0, 0) - 1.0).abs() < 1e-5);
    }
}

#[cfg(test)]
mod gat_tests {
    use super::*;
    use crate::init::seeded_rng;

    fn grad_check_slot(
        params: &[Matrix],
        slot: usize,
        build: &dyn Fn(&mut Tape, &[Matrix]) -> Var,
        tol: f32,
    ) {
        let mut tape = Tape::new();
        let loss = build(&mut tape, params);
        let grads = tape.backward(loss, params.len());
        let analytic = grads[slot].as_ref().expect("slot participates");
        let h = 1e-2f32;
        for k in 0..params[slot].len() {
            let eval = |delta: f32| {
                let mut ps = params.to_vec();
                ps[slot].as_mut_slice()[k] += delta;
                let mut t = Tape::new();
                let l = build(&mut t, &ps);
                t.scalar(l)
            };
            let numeric = (eval(h) - eval(-h)) / (2.0 * h);
            let a = analytic.as_slice()[k];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "slot {slot} elem {k}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn attention_graph() -> Rc<CsrMatrix> {
        // 4-node path with self-loops: structure only, values ignored.
        Rc::new(CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 3, 1.0),
            ],
        ))
    }

    fn gat_loss(t: &mut Tape, ps: &[Matrix], adj: &Rc<CsrMatrix>) -> Var {
        let h = t.param(0, ps[0].clone());
        let a_l = t.param(1, ps[1].clone());
        let a_r = t.param(2, ps[2].clone());
        let out = t.graph_attention(adj, h, a_l, a_r, 0.2);
        let e = t.elu(out);
        let target = Rc::new(Matrix::full(4, 3, 0.25));
        t.mse_rows(e, target, Rc::new((0..4).collect()))
    }

    #[test]
    fn graph_attention_rows_are_convex_combinations() {
        let adj = attention_graph();
        let mut t = Tape::new();
        let mut rng = seeded_rng(31);
        let h = crate::init::uniform(4, 3, 1.0, &mut rng);
        let hv = t.constant(h.clone());
        let a_l = t.constant(crate::init::uniform(1, 3, 1.0, &mut rng));
        let a_r = t.constant(crate::init::uniform(1, 3, 1.0, &mut rng));
        let out = t.graph_attention(&adj, hv, a_l, a_r, 0.2);
        let o = t.value(out);
        // Each output row lies inside the convex hull of its neighborhood's
        // h-rows: its min/max per column are bounded by the neighbors'.
        for i in 0..4 {
            let (cols, _) = adj.row(i);
            for c in 0..3 {
                let lo = cols
                    .iter()
                    .map(|&j| h.get(j as usize, c))
                    .fold(f32::INFINITY, f32::min);
                let hi = cols
                    .iter()
                    .map(|&j| h.get(j as usize, c))
                    .fold(f32::NEG_INFINITY, f32::max);
                let v = o.get(i, c);
                assert!(
                    v >= lo - 1e-5 && v <= hi + 1e-5,
                    "row {i} col {c}: {v} not in [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn graph_attention_gradient_h() {
        let adj = attention_graph();
        let mut rng = seeded_rng(32);
        let params = vec![
            crate::init::uniform(4, 3, 1.0, &mut rng),
            crate::init::uniform(1, 3, 1.0, &mut rng),
            crate::init::uniform(1, 3, 1.0, &mut rng),
        ];
        grad_check_slot(&params, 0, &|t, ps| gat_loss(t, ps, &adj), 5e-2);
    }

    #[test]
    fn graph_attention_gradient_attention_vectors() {
        let adj = attention_graph();
        let mut rng = seeded_rng(33);
        let params = vec![
            crate::init::uniform(4, 3, 1.0, &mut rng),
            crate::init::uniform(1, 3, 1.0, &mut rng),
            crate::init::uniform(1, 3, 1.0, &mut rng),
        ];
        grad_check_slot(&params, 1, &|t, ps| gat_loss(t, ps, &adj), 5e-2);
        grad_check_slot(&params, 2, &|t, ps| gat_loss(t, ps, &adj), 5e-2);
    }

    #[test]
    fn elu_matches_definition_and_gradient() {
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.0, 1.5]);
        let mut t = Tape::new();
        let p = t.param(0, x.clone());
        let e = t.elu(p);
        let v = t.value(e);
        assert!((v.get(0, 0) - (-2.0f32).exp_m1()).abs() < 1e-6);
        assert!((v.get(0, 3) - 1.5).abs() < 1e-6);
        // Gradient via mse against zeros.
        let params = vec![x];
        grad_check_slot(
            &params,
            0,
            &|t, ps| {
                let p = t.param(0, ps[0].clone());
                let e = t.elu(p);
                let target = Rc::new(Matrix::zeros(1, 4));
                t.mse_rows(e, target, Rc::new(vec![0]))
            },
            3e-2,
        );
    }

    #[test]
    fn isolated_node_attention_is_safe() {
        // Node 1 has no stored neighbors at all (not even a self-loop).
        let adj = Rc::new(CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]));
        let mut t = Tape::new();
        let h = t.param(0, Matrix::full(2, 2, 1.0));
        let a_l = t.constant(Matrix::full(1, 2, 0.1));
        let a_r = t.constant(Matrix::full(1, 2, 0.1));
        let out = t.graph_attention(&adj, h, a_l, a_r, 0.2);
        let o = t.value(out);
        assert_eq!(o.row(1), &[0.0, 0.0], "empty neighborhood outputs zero");
        assert!(
            (o.get(0, 0) - 1.0).abs() < 1e-6,
            "self-loop passes h through"
        );
        let target = Rc::new(Matrix::zeros(2, 2));
        let l = t.mse_rows(out, target, Rc::new(vec![0, 1]));
        let g = t.backward(l, 1);
        assert!(g[0].is_some());
    }
}
