#![warn(missing_docs)]
//! # rdd-tensor
//!
//! The numeric substrate for the RDD (Reliable Data Distillation, SIGMOD
//! 2020) reproduction: dense and CSR sparse matrices, the small set of
//! kernels GCN training needs, a tape-based reverse-mode autodiff engine,
//! weight initialization and the Adam optimizer.
//!
//! Everything is `f32`, CPU-only, and deterministic under a fixed seed.
//! Parallelism is scoped-thread row blocking (no work-stealing runtime), so
//! results are reproducible regardless of thread count.
//!
//! ```
//! use rdd_tensor::{Matrix, Tape};
//! use std::rc::Rc;
//!
//! let mut tape = Tape::new();
//! let w = tape.param(0, Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
//! let x = tape.constant(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
//! let y = tape.matmul(x, w);
//! let loss = tape.mse_rows(y, Rc::new(Matrix::zeros(1, 2)), Rc::new(vec![0]));
//! let grads = tape.backward(loss, 1);
//! assert!(grads[0].is_some());
//! ```

pub mod autograd;
pub mod init;
pub mod matrix;
pub mod optim;
pub mod par;
pub mod simd;
pub mod sparse;
pub mod workspace;

pub use autograd::{Tape, Var};
pub use init::{glorot_uniform, seeded_rng, uniform};
pub use matrix::Matrix;
pub use optim::Adam;
pub use simd::SimdTier;
pub use sparse::CsrMatrix;
pub use workspace::{Workspace, WorkspaceStats};
