//! Equivalence of the parallel kernels with the sequential reference path.
//!
//! Every parallel kernel (`matmul`, `matmul_at_b`, `matmul_a_bt`, `spmm`,
//! `spmm_t`, `spmv`, `spmv_t`, `transpose`) must produce the same result —
//! bitwise where the parallel split preserves summation order (row-split
//! gathers), within ε where it does not (partial-buffer reductions reorder
//! the sum) — as a naive sequential implementation, which is also what the
//! kernels compute under `RDD_THREADS=1`.
//!
//! `force_pool` pins `RDD_THREADS=4` before the first kernel call latches
//! the thread count, so the worker pool and both parallel code paths are
//! exercised even on a single-core CI runner. Shapes are drawn to straddle
//! the parallel-dispatch thresholds and include non-divisible row counts;
//! the CSR strategies generate empty rows.

use proptest::prelude::*;
use rdd_tensor::{CsrMatrix, Matrix};

/// Force a multi-thread pool unless the caller pinned RDD_THREADS.
///
/// Must run before any kernel call in every test: the thread count is
/// latched once per process.
fn force_pool() {
    if std::env::var("RDD_THREADS").is_err() {
        std::env::set_var("RDD_THREADS", "4");
    }
}

// ---- naive sequential references ----

fn ref_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a.get(i, k);
            for j in 0..b.cols() {
                out.set(i, j, out.get(i, j) + av * b.get(k, j));
            }
        }
    }
    out
}

fn ref_matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for k in 0..a.rows() {
        for j in 0..a.cols() {
            let av = a.get(k, j);
            for c in 0..b.cols() {
                out.set(j, c, out.get(j, c) + av * b.get(k, c));
            }
        }
    }
    out
}

fn ref_matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(j, k);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn ref_spmm(s: &CsrMatrix, d: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(s.rows(), d.cols());
    for (r, c, v) in s.iter() {
        for j in 0..d.cols() {
            out.set(r, j, out.get(r, j) + v * d.get(c, j));
        }
    }
    out
}

fn ref_spmm_t(s: &CsrMatrix, d: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(s.cols(), d.cols());
    for (r, c, v) in s.iter() {
        for j in 0..d.cols() {
            out.set(c, j, out.get(c, j) + v * d.get(r, j));
        }
    }
    out
}

fn ref_spmv(s: &CsrMatrix, v: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; s.rows()];
    for (r, c, w) in s.iter() {
        out[r] += w * v[c];
    }
    out
}

fn ref_spmv_t(s: &CsrMatrix, v: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; s.cols()];
    for (r, c, w) in s.iter() {
        out[c] += w * v[r];
    }
    out
}

/// ε scaled to the reduction length: each output element sums `k` products
/// of values in [-1, 1], and the parallel reduction reorders that sum.
fn tol(k: usize) -> f32 {
    1e-4 * (k as f32).max(1.0)
}

fn assert_close(fast: &Matrix, slow: &Matrix, k: usize, what: &str) {
    let d = fast.max_abs_diff(slow);
    assert!(d <= tol(k), "{what}: max abs diff {d} > {}", tol(k));
}

fn assert_vec_close(fast: &[f32], slow: &[f32], k: usize, what: &str) {
    assert_eq!(fast.len(), slow.len(), "{what}: length mismatch");
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert!(
            (a - b).abs() <= tol(k),
            "{what}: index {i}: {a} vs {b} (tol {})",
            tol(k)
        );
    }
}

// ---- strategies ----

prop_compose! {
    fn matrix(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>)
             (r in rows, c in cols)
             (data in prop::collection::vec(-1.0f32..1.0, r * c),
              r in Just(r), c in Just(c))
             -> Matrix {
        Matrix::from_vec(r, c, data)
    }
}

prop_compose! {
    /// Sparse matrix with ~density nnz; many rows end up empty.
    fn csr(rows: std::ops::Range<usize>, cols: std::ops::Range<usize>, nnz_max: usize)
          (r in rows, c in cols)
          (triplets in prop::collection::vec((0..r, 0..c, -1.0f32..1.0), 0..nnz_max),
           r in Just(r), c in Just(c))
          -> CsrMatrix {
        CsrMatrix::from_triplets(r, c, &triplets)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_matches_reference(
        a in matrix(64..130, 8..24),
        n in 200..300usize,
        seed in any::<u64>(),
    ) {
        force_pool();
        // Rebuild b from the seed so a and b agree on the inner dimension.
        let k = a.cols();
        let mut s = seed | 1;
        let b = Matrix::from_fn(k, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        });
        // Row-split matmul preserves per-row summation order, but the
        // k-unrolled quads reassociate, so compare within ε.
        assert_close(&a.matmul(&b), &ref_matmul(&a, &b), k, "matmul");
    }

    #[test]
    fn matmul_at_b_matches_reference(
        a in matrix(150..260, 8..24),
        n in 24..40usize,
        seed in any::<u64>(),
    ) {
        force_pool();
        let rows = a.rows();
        let mut s = seed | 1;
        let b = Matrix::from_fn(rows, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        });
        assert_close(&a.matmul_at_b(&b), &ref_matmul_at_b(&a, &b), rows, "matmul_at_b");
    }

    #[test]
    fn matmul_a_bt_matches_reference(
        a in matrix(64..130, 8..24),
        n in 200..300usize,
        seed in any::<u64>(),
    ) {
        force_pool();
        let k = a.cols();
        let mut s = seed | 1;
        let b = Matrix::from_fn(n, k, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        });
        assert_close(&a.matmul_a_bt(&b), &ref_matmul_a_bt(&a, &b), k, "matmul_a_bt");
    }

    #[test]
    fn transpose_matches_reference(m in matrix(64..200, 64..160)) {
        force_pool();
        let t = m.transpose();
        prop_assert_eq!(t.shape(), (m.cols(), m.rows()));
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert_eq!(t.get(j, i), m.get(i, j), "transpose ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn spmm_matches_reference(
        s in csr(300..500, 40..80, 3000),
        n in 48..80usize,
        seed in any::<u64>(),
    ) {
        force_pool();
        let k = s.cols();
        let mut st = seed | 1;
        let d = Matrix::from_fn(k, n, |_, _| {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((st >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        });
        assert_close(&s.spmm(&d), &ref_spmm(&s, &d), k, "spmm");
    }

    #[test]
    fn spmm_t_matches_reference(
        s in csr(300..500, 40..80, 3000),
        n in 48..80usize,
        seed in any::<u64>(),
    ) {
        force_pool();
        let rows = s.rows();
        let mut st = seed | 1;
        let d = Matrix::from_fn(rows, n, |_, _| {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((st >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        });
        assert_close(&s.spmm_t(&d), &ref_spmm_t(&s, &d), rows, "spmm_t");
    }
}

/// The vector kernels need tens of thousands of rows to cross the parallel
/// thresholds, so they get one large deterministic case instead of many
/// proptest cases.
#[test]
fn spmv_and_spmv_t_match_reference_at_parallel_scale() {
    force_pool();
    let n = 20_000;
    let mut s = 0x1234_5678_9abc_def1u64;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s
    };
    let mut triplets = Vec::new();
    for _ in 0..40_000 {
        let r = (next() % n as u64) as usize;
        // Leave a band of guaranteed-empty rows.
        if (2000..2100).contains(&r) {
            continue;
        }
        let c = (next() % n as u64) as usize;
        let v = ((next() >> 40) as f32 / (1u64 << 23) as f32) - 1.0;
        triplets.push((r, c, v));
    }
    let m = CsrMatrix::from_triplets(n, n, &triplets);
    let v: Vec<f32> = (0..n)
        .map(|_| ((next() >> 40) as f32 / (1u64 << 23) as f32) - 1.0)
        .collect();
    assert_vec_close(&m.spmv(&v), &ref_spmv(&m, &v), 8, "spmv");
    assert_vec_close(&m.spmv_t(&v), &ref_spmv_t(&m, &v), 8, "spmv_t");
}

/// Non-divisible row counts around the chunking boundaries.
#[test]
fn odd_row_counts_cover_all_rows() {
    force_pool();
    for rows in [65usize, 127, 129, 255, 257] {
        let a = Matrix::from_fn(rows, 40, |i, j| ((i * 31 + j * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(40, 260, |i, j| ((i * 7 + j * 3) % 11) as f32 - 5.0);
        let fast = a.matmul(&b);
        let slow = ref_matmul(&a, &b);
        assert_close(&fast, &slow, 40, "odd-row matmul");
        let g = a.matmul_at_b(&Matrix::from_fn(rows, 24, |i, j| (i + j) as f32 * 0.01));
        let h = ref_matmul_at_b(&a, &Matrix::from_fn(rows, 24, |i, j| (i + j) as f32 * 0.01));
        assert_close(&g, &h, rows, "odd-row matmul_at_b");
    }
}
