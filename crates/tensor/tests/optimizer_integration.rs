//! Optimizer-on-tape integration: Adam must drive real (small) learning
//! problems built from the autodiff ops to convergence.

use std::rc::Rc;

use rdd_tensor::{seeded_rng, uniform, Adam, Matrix, Tape};

/// Logistic regression on a linearly separable 2-class problem.
#[test]
fn adam_fits_logistic_regression() {
    let mut rng = seeded_rng(1);
    let n = 60;
    // Two gaussian-ish blobs along the first feature.
    let x = Matrix::from_fn(n, 2, |i, j| {
        let sign = if i < n / 2 { -1.0 } else { 1.0 };
        let noise = uniform(1, 1, 0.5, &mut rng).get(0, 0);
        if j == 0 {
            sign + noise
        } else {
            noise
        }
    });
    let labels: Vec<usize> = (0..n).map(|i| usize::from(i >= n / 2)).collect();
    let labels = Rc::new(labels);
    let idx: Rc<Vec<usize>> = Rc::new((0..n).collect());

    let mut params = vec![uniform(2, 2, 0.1, &mut rng)];
    let mut opt = Adam::new(0.05, 0.0, vec![false]);
    let mut last_loss = f32::INFINITY;
    for _ in 0..200 {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let w = tape.param(0, params[0].clone());
        let logits = tape.matmul(xv, w);
        let lp = tape.log_softmax(logits);
        let loss = tape.nll_masked(lp, Rc::clone(&labels), Rc::clone(&idx));
        last_loss = tape.scalar(loss);
        let grads = tape.backward(loss, 1);
        opt.step(&mut params, &grads);
    }
    assert!(
        last_loss < 0.1,
        "logistic regression failed to converge: loss {last_loss}"
    );

    // Final accuracy.
    let mut tape = Tape::new();
    let xv = tape.constant(x.clone());
    let w = tape.param(0, params[0].clone());
    let logits = tape.matmul(xv, w);
    let preds = tape.value(logits).argmax_rows();
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(a, b)| a == b)
        .count();
    assert!(correct as f32 / n as f32 > 0.95, "accuracy {correct}/{n}");
}

/// A two-layer ReLU network must fit XOR (which logistic regression can't).
#[test]
fn adam_fits_xor_with_hidden_layer() {
    let mut rng = seeded_rng(2);
    let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
    let labels = Rc::new(vec![0usize, 1, 1, 0]);
    let idx: Rc<Vec<usize>> = Rc::new((0..4).collect());

    let mut params = vec![uniform(2, 16, 1.0, &mut rng), uniform(16, 2, 1.0, &mut rng)];
    let mut opt = Adam::new(0.05, 0.0, vec![false, false]);
    let mut last_loss = f32::INFINITY;
    for _ in 0..1500 {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let w1 = tape.param(0, params[0].clone());
        let w2 = tape.param(1, params[1].clone());
        let h = tape.matmul(xv, w1);
        let h = tape.relu(h);
        let logits = tape.matmul(h, w2);
        let lp = tape.log_softmax(logits);
        let loss = tape.nll_masked(lp, Rc::clone(&labels), Rc::clone(&idx));
        last_loss = tape.scalar(loss);
        let grads = tape.backward(loss, 2);
        opt.step(&mut params, &grads);
    }
    assert!(last_loss < 0.2, "XOR failed to converge: loss {last_loss}");
}

/// Weight decay should shrink the solution norm relative to no decay.
#[test]
fn weight_decay_regularizes_solution() {
    let solve = |wd: f32| -> f32 {
        let mut rng = seeded_rng(3);
        let x = uniform(20, 3, 1.0, &mut rng);
        let labels = Rc::new((0..20).map(|i| i % 3).collect::<Vec<_>>());
        let idx: Rc<Vec<usize>> = Rc::new((0..20).collect());
        let mut params = vec![uniform(3, 3, 0.1, &mut rng)];
        let mut opt = Adam::new(0.05, wd, vec![true]);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let w = tape.param(0, params[0].clone());
            let logits = tape.matmul(xv, w);
            let lp = tape.log_softmax(logits);
            let loss = tape.nll_masked(lp, Rc::clone(&labels), Rc::clone(&idx));
            let grads = tape.backward(loss, 1);
            opt.step(&mut params, &grads);
        }
        params[0].frob_sq()
    };
    let free = solve(0.0);
    let decayed = solve(0.5);
    assert!(
        decayed < free,
        "decayed norm {decayed} should be below unregularized {free}"
    );
}

/// Gradients through a shared parameter used twice accumulate — training a
/// tied-weight autoencoder-ish objective should still converge.
#[test]
fn shared_parameter_training_converges() {
    let mut rng = seeded_rng(4);
    let x = uniform(10, 4, 1.0, &mut rng);
    let mut params = vec![uniform(4, 4, 0.3, &mut rng)];
    let mut opt = Adam::new(0.02, 0.0, vec![false]);
    let idx: Rc<Vec<usize>> = Rc::new((0..10).collect());
    let mut last = f32::INFINITY;
    for _ in 0..400 {
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let w = tape.param(0, params[0].clone());
        // y = relu(x W) W  — same W twice.
        let h = tape.matmul(xv, w);
        let h = tape.relu(h);
        let y = tape.matmul(h, w);
        let loss = tape.mse_rows(y, Rc::new(x.clone()), Rc::clone(&idx));
        last = tape.scalar(loss);
        let grads = tape.backward(loss, 1);
        opt.step(&mut params, &grads);
    }
    assert!(last < 0.5, "tied-weight reconstruction stuck at {last}");
}
