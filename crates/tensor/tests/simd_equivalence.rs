//! Property tests: every SIMD-dispatched kernel must agree with the
//! scalar oracle across a randomized sweep of shapes and values.
//!
//! The contract under test (see `crates/tensor/src/simd.rs`):
//!
//! * the **SSE2** tier is *bitwise* identical to scalar on every kernel —
//!   its vector code replicates the scalar expression trees exactly;
//! * the **AVX2+FMA** tier is bitwise on pure elementwise lane ops
//!   (add, mul, scale by multiply, relu forward/backward) and
//!   *bounded-ULP* wherever `fmadd` reassociates a multiply-add or the
//!   polynomial `exp`/`ln` replace libm (reductions, softmax family,
//!   dequantization).
//!
//! The sweep is deterministic (xorshift64), so a failure names a
//! reproducible case. Tier switching goes through `simd::force_active`,
//! which is process-global — every test here serializes on one mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};

use rdd_tensor::simd::{self, SimdTier};
use rdd_tensor::{CsrMatrix, Matrix};

/// Serialize tests that flip the process-global tier latch.
fn tier_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform in [-2, 2): softmax-friendly dynamic range, no -0.0.
    fn f32(&mut self) -> f32 {
        let v = ((self.next_u64() >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0;
        if v == 0.0 {
            0.5
        } else {
            v
        }
    }

    fn matrix(&mut self, r: usize, c: usize) -> Matrix {
        let data = (0..r * c).map(|_| self.f32()).collect();
        Matrix::from_vec(r, c, data)
    }

    fn csr(&mut self, r: usize, c: usize, nnz: usize) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f32)> = (0..nnz)
            .map(|_| {
                (
                    (self.next_u64() % r as u64) as usize,
                    (self.next_u64() % c as u64) as usize,
                    self.f32().abs() + 0.01,
                )
            })
            .collect();
        CsrMatrix::from_triplets(r, c, &triplets)
    }
}

/// Tiers this host can actually run, scalar first.
fn tiers() -> Vec<SimdTier> {
    [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2]
        .into_iter()
        .filter(|&t| simd::available(t))
        .collect()
}

fn run_tiered(f: impl Fn() -> Matrix) -> Vec<(SimdTier, Matrix)> {
    tiers()
        .into_iter()
        .map(|t| {
            simd::force_active(t);
            (t, f())
        })
        .collect()
}

/// Assert every tier's output against the scalar reference: bitwise for
/// SSE2, within `rel_ulp_bound` relative error for AVX2 (`0` demands
/// bitwise there too).
fn assert_tiers_agree(results: &[(SimdTier, Matrix)], rel_bound: f32, what: &str) {
    let (_, reference) = &results[0];
    for (tier, got) in &results[1..] {
        for (i, (x, y)) in reference.as_slice().iter().zip(got.as_slice()).enumerate() {
            if *tier == SimdTier::Sse2 || rel_bound == 0.0 {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{what} [{i}] {tier:?}: {x} vs {y} must be bitwise"
                );
            } else {
                let tol = rel_bound * x.abs().max(1.0);
                assert!(
                    (x - y).abs() <= tol,
                    "{what} [{i}] {tier:?}: {x} vs {y} (tol {tol})"
                );
            }
        }
    }
}

/// Shape sweep hitting the vector-width edges: below one lane group,
/// exact multiples of 4/8, and ragged tails.
const DIMS: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 31, 33];

#[test]
fn matmul_family_sse2_bitwise_avx2_bounded() {
    let _guard = tier_lock();
    let mut rng = Rng(0x5eed_0001);
    for case in 0..12 {
        let (m, k, n) = (
            DIMS[case % DIMS.len()],
            DIMS[(case + 4) % DIMS.len()],
            DIMS[(case + 7) % DIMS.len()],
        );
        let a = rng.matrix(m, k);
        let b = rng.matrix(k, n);
        let bt = b.transpose();
        let at = a.transpose();
        assert_tiers_agree(&run_tiered(|| a.matmul(&b)), 1e-5, "matmul");
        assert_tiers_agree(&run_tiered(|| a.matmul_a_bt(&bt)), 1e-5, "matmul_a_bt");
        assert_tiers_agree(&run_tiered(|| at.matmul_at_b(&b)), 1e-5, "matmul_at_b");
    }
    simd::force_active(simd::detect_best());
}

#[test]
fn spmm_quad_gather_sse2_bitwise_avx2_bounded() {
    let _guard = tier_lock();
    let mut rng = Rng(0x5eed_0002);
    for &(r, c, k, nnz) in &[(5, 7, 3, 11), (16, 16, 8, 64), (33, 9, 17, 120)] {
        let s = rng.csr(r, c, nnz);
        let d = rng.matrix(c, k);
        let dr = rng.matrix(r, k);
        assert_tiers_agree(&run_tiered(|| s.spmm(&d)), 1e-5, "spmm");
        assert_tiers_agree(&run_tiered(|| s.spmm_t(&dr)), 1e-5, "spmm_t");
    }
    simd::force_active(simd::detect_best());
}

#[test]
fn softmax_family_sse2_bitwise_avx2_bounded() {
    let _guard = tier_lock();
    let mut rng = Rng(0x5eed_0003);
    for &cols in DIMS {
        let m = rng.matrix(6, cols);
        assert_tiers_agree(&run_tiered(|| m.softmax_rows()), 1e-5, "softmax_rows");
        // Entropy over a softmaxed matrix (the loss hook's exact usage).
        simd::force_active(SimdTier::Scalar);
        let p = m.softmax_rows();
        assert_tiers_agree(
            &run_tiered(|| Matrix::from_vec(6, 1, p.row_entropy())),
            1e-5,
            "row_entropy",
        );
        let row: Vec<f32> = m.row(3).to_vec();
        assert_tiers_agree(
            &run_tiered(|| {
                let mut r = row.clone();
                rdd_tensor::matrix::log_softmax_in_place(&mut r);
                Matrix::from_vec(1, cols, r)
            }),
            1e-5,
            "log_softmax",
        );
    }
    simd::force_active(simd::detect_best());
}

#[test]
fn elementwise_lane_ops_are_bitwise_on_every_tier() {
    let _guard = tier_lock();
    let mut rng = Rng(0x5eed_0004);
    for &cols in DIMS {
        let a = rng.matrix(5, cols);
        let b = rng.matrix(5, cols);
        // add / hadamard / scale / relu run the same lane op per element
        // in every tier — bitwise equality is required even under AVX2.
        assert_tiers_agree(
            &run_tiered(|| {
                let mut x = a.clone();
                x.add_assign(&b);
                x
            }),
            0.0,
            "add_assign",
        );
        assert_tiers_agree(&run_tiered(|| a.hadamard(&b)), 0.0, "hadamard");
        assert_tiers_agree(&run_tiered(|| a.scaled(1.375)), 0.0, "scale");
        assert_tiers_agree(
            &run_tiered(|| {
                let mut x = a.clone();
                simd::relu_in_place(simd::active(), x.as_mut_slice());
                x
            }),
            0.0,
            "relu",
        );
        assert_tiers_agree(
            &run_tiered(|| {
                let mut dx = b.clone();
                simd::relu_bwd(simd::active(), dx.as_mut_slice(), a.as_slice());
                dx
            }),
            0.0,
            "relu_bwd",
        );
        // add_scaled fuses into one fmadd under AVX2: bounded, not bitwise.
        assert_tiers_agree(
            &run_tiered(|| {
                let mut x = a.clone();
                x.add_scaled_assign(&b, -0.625);
                x
            }),
            1e-6,
            "add_scaled_assign",
        );
    }
    simd::force_active(simd::detect_best());
}

#[test]
fn backward_row_kernels_and_dequant_agree_across_tiers() {
    let _guard = tier_lock();
    let mut rng = Rng(0x5eed_0005);
    for &cols in DIMS {
        let g = rng.matrix(1, cols);
        let y = rng.matrix(1, cols).softmax_rows();
        assert_tiers_agree(
            &run_tiered(|| {
                let mut dx = g.clone();
                simd::softmax_bwd_row(simd::active(), dx.row_mut(0), y.row(0));
                dx
            }),
            1e-5,
            "softmax_bwd_row",
        );
        assert_tiers_agree(
            &run_tiered(|| {
                let mut dx = g.clone();
                simd::log_softmax_bwd_row(simd::active(), dx.row_mut(0), y.row(0));
                dx
            }),
            1e-5,
            "log_softmax_bwd_row",
        );
        let q: Vec<u8> = (0..cols).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        assert_tiers_agree(
            &run_tiered(|| {
                let mut out = Matrix::zeros(1, cols);
                simd::dequant_u8(simd::active(), &q, 0.01375, -1.75, out.row_mut(0));
                out
            }),
            1e-5,
            "dequant_u8",
        );
    }
    simd::force_active(simd::detect_best());
}
