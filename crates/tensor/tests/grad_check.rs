//! Property-based gradient checks and kernel invariants for `rdd-tensor`.
//!
//! Every differentiable op is validated against central finite differences
//! over randomized shapes and values; the dense/sparse kernels are validated
//! against their naive reference forms.

use std::rc::Rc;

use proptest::prelude::*;
use rdd_tensor::{CsrMatrix, Matrix, Tape};

/// Strategy: a matrix with entries in [-2, 2].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Central finite-difference check for `d scalar / d param`.
fn check_grad(param: &Matrix, build: impl Fn(&mut Tape, Matrix) -> rdd_tensor::Var, tol: f32) {
    let mut tape = Tape::new();
    let loss = build(&mut tape, param.clone());
    let grads = tape.backward(loss, 1);
    let analytic = grads[0].as_ref().expect("param must participate");
    let h = 1e-2f32;
    for k in 0..param.len() {
        let eval = |delta: f32| {
            let mut p = param.clone();
            p.as_mut_slice()[k] += delta;
            let mut t = Tape::new();
            let l = build(&mut t, p);
            t.scalar(l)
        };
        let numeric = (eval(h) - eval(-h)) / (2.0 * h);
        let a = analytic.as_slice()[k];
        prop_assert_eq_approx(a, numeric, tol);
    }
}

fn prop_assert_eq_approx(a: f32, b: f32, tol: f32) {
    assert!(
        (a - b).abs() <= tol * (1.0 + b.abs()),
        "gradient mismatch: analytic {a} vs numeric {b}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matmul_chain_gradient(w in matrix(3, 2), x in matrix(4, 3)) {
        check_grad(&w, |t, p| {
            let xv = t.constant(x.clone());
            let pv = t.param(0, p);
            let y = t.matmul(xv, pv);
            let r = t.relu(y);
            let target = Rc::new(Matrix::zeros(4, 2));
            t.mse_rows(r, target, Rc::new((0..4).collect()))
        }, 5e-2);
    }

    #[test]
    fn log_softmax_nll_gradient(x in matrix(3, 4)) {
        let labels = Rc::new(vec![0usize, 3, 1]);
        check_grad(&x, |t, p| {
            let pv = t.param(0, p);
            let lp = t.log_softmax(pv);
            t.nll_masked(lp, Rc::clone(&labels), Rc::new(vec![0, 1, 2]))
        }, 5e-2);
    }

    #[test]
    fn edge_reg_gradient_random_edges(x in matrix(5, 3), seed in 0u32..100) {
        let edges = Rc::new(vec![
            (seed % 5, (seed + 1) % 5),
            ((seed + 2) % 5, (seed + 4) % 5),
        ]);
        // Skip degenerate self-loops: d‖x_i − x_i‖²/dx = 0 trivially holds
        // but offers no signal.
        check_grad(&x, |t, p| {
            let pv = t.param(0, p);
            t.edge_reg(pv, Rc::clone(&edges))
        }, 5e-2);
    }

    #[test]
    fn softmax_rows_are_distributions(x in matrix(4, 6)) {
        let s = x.softmax_rows();
        for i in 0..4 {
            let sum: f32 = s.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn row_entropy_bounded_by_ln_k(x in matrix(4, 6)) {
        let s = x.softmax_rows();
        let max_e = 6.0f32.ln();
        for e in s.row_entropy() {
            prop_assert!(e >= -1e-5 && e <= max_e + 1e-4, "entropy {e} out of [0, ln 6]");
        }
    }

    #[test]
    fn matmul_associates_with_identity(x in matrix(3, 3)) {
        let i = Matrix::eye(3);
        prop_assert!(x.matmul(&i).max_abs_diff(&x) < 1e-5);
        prop_assert!(i.matmul(&x).max_abs_diff(&x) < 1e-5);
    }

    #[test]
    fn csr_roundtrip_preserves_entries(
        entries in proptest::collection::vec((0usize..6, 0usize..7, -3.0f32..3.0), 0..30)
    ) {
        let m = CsrMatrix::from_triplets(6, 7, &entries);
        // Dense reference built by summing duplicates.
        let mut dense = Matrix::zeros(6, 7);
        for &(r, c, v) in &entries {
            dense.set(r, c, dense.get(r, c) + v);
        }
        prop_assert!(m.to_dense().max_abs_diff(&dense) < 1e-4);
        // spmm against dense matmul.
        let rhs = Matrix::from_fn(7, 3, |i, j| (i * 3 + j) as f32 * 0.1 - 1.0);
        prop_assert!(m.spmm(&rhs).max_abs_diff(&dense.matmul(&rhs)) < 1e-3);
        // transpose product.
        let rhs_t = Matrix::from_fn(6, 2, |i, j| (i + j) as f32 * 0.2 - 0.5);
        prop_assert!(m.spmm_t(&rhs_t).max_abs_diff(&dense.transpose().matmul(&rhs_t)) < 1e-3);
    }

    #[test]
    fn spmm_gradient_matches_fd(x in matrix(4, 2)) {
        let sp = Rc::new(CsrMatrix::from_triplets(4, 4, &[
            (0, 1, 0.5), (1, 0, 0.5), (2, 3, 1.0), (3, 3, 0.25), (0, 0, 0.5),
        ]));
        check_grad(&x, |t, p| {
            let pv = t.param(0, p);
            let y = t.spmm(&sp, pv, false);
            let target = Rc::new(Matrix::full(4, 2, 0.3));
            t.mse_rows(y, target, Rc::new((0..4).collect()))
        }, 5e-2);
    }

    #[test]
    fn concat_and_scale_gradient(a in matrix(3, 2)) {
        let b = Matrix::full(3, 1, 0.7);
        check_grad(&a, |t, p| {
            let pv = t.param(0, p);
            let bv = t.constant(b.clone());
            let c = t.concat_cols(&[pv, bv]);
            let s = t.scale(c, 1.5);
            let target = Rc::new(Matrix::zeros(3, 3));
            t.mse_rows(s, target, Rc::new((0..3).collect()))
        }, 5e-2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn softmax_gradient(x in matrix(3, 4)) {
        check_grad(&x, |t, p| {
            let pv = t.param(0, p);
            let s = t.softmax(pv);
            // Pull the distribution toward uniform.
            let target = Rc::new(Matrix::full(3, 4, 0.25));
            t.mse_rows(s, target, Rc::new((0..3).collect()))
        }, 6e-2);
    }

    #[test]
    fn soft_ce_gradient(x in matrix(3, 4)) {
        let teacher = Matrix::from_fn(3, 4, |i, j| ((i + j) % 4) as f32 + 0.5).softmax_rows();
        let teacher = Rc::new(teacher);
        check_grad(&x, move |t, p| {
            let pv = t.param(0, p);
            let lp = t.log_softmax(pv);
            t.soft_ce_masked(lp, Rc::clone(&teacher), Rc::new(vec![0, 2]))
        }, 6e-2);
    }

    #[test]
    fn elu_gradient(x in matrix(2, 5)) {
        check_grad(&x, |t, p| {
            let pv = t.param(0, p);
            let e = t.elu(pv);
            let target = Rc::new(Matrix::zeros(2, 5));
            t.mse_rows(e, target, Rc::new(vec![0, 1]))
        }, 6e-2);
    }

    #[test]
    fn weighted_edge_reg_gradient(x in matrix(4, 3), w0 in 0.1f32..2.0, w1 in 0.1f32..2.0) {
        let edges = Rc::new(vec![(0u32, 1u32), (2, 3)]);
        let weights = Rc::new(vec![w0, w1]);
        check_grad(&x, move |t, p| {
            let pv = t.param(0, p);
            t.edge_reg_weighted(pv, Rc::clone(&edges), Rc::clone(&weights))
        }, 6e-2);
    }

    #[test]
    fn graph_attention_gradient_random(h in matrix(4, 3)) {
        let adj = Rc::new(CsrMatrix::from_triplets(4, 4, &[
            (0, 0, 1.0), (0, 1, 1.0),
            (1, 0, 1.0), (1, 1, 1.0), (1, 2, 1.0),
            (2, 1, 1.0), (2, 2, 1.0), (2, 3, 1.0),
            (3, 2, 1.0), (3, 3, 1.0),
        ]));
        let a_l = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.5]);
        let a_r = Matrix::from_vec(1, 3, vec![-0.4, 0.1, 0.2]);
        check_grad(&h, move |t, p| {
            let pv = t.param(0, p);
            let al = t.constant(a_l.clone());
            let ar = t.constant(a_r.clone());
            let out = t.graph_attention(&adj, pv, al, ar, 0.2);
            let target = Rc::new(Matrix::full(4, 3, 0.1));
            t.mse_rows(out, target, Rc::new((0..4).collect()))
        }, 8e-2);
    }

    #[test]
    fn attention_rows_are_convex_weights(h in matrix(5, 2)) {
        // Output of attention must be a convex combination of neighbor
        // rows: per-column bounded by the neighborhood min/max.
        let adj = Rc::new(CsrMatrix::from_triplets(5, 5, &(0..5).flat_map(|i| {
            vec![(i, i, 1.0), (i, (i + 1) % 5, 1.0)]
        }).collect::<Vec<_>>()));
        let mut t = Tape::new();
        let hv = t.constant(h.clone());
        let al = t.constant(Matrix::from_vec(1, 2, vec![0.7, -0.3]));
        let ar = t.constant(Matrix::from_vec(1, 2, vec![0.2, 0.4]));
        let out = t.graph_attention(&adj, hv, al, ar, 0.2);
        let o = t.value(out);
        for i in 0..5 {
            let neigh = [i, (i + 1) % 5];
            for c in 0..2 {
                let lo = neigh.iter().map(|&j| h.get(j, c)).fold(f32::INFINITY, f32::min);
                let hi = neigh.iter().map(|&j| h.get(j, c)).fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(o.get(i, c) >= lo - 1e-4 && o.get(i, c) <= hi + 1e-4);
            }
        }
    }
}
