//! Steady-state allocation test: two identical training epochs against one
//! workspace — the second must be served entirely from the pool (zero fresh
//! allocations), and the pool's rdd-obs counters must land in the trace.
//!
//! Single `#[test]` on purpose: the recorder sink is process-global, so the
//! scenario must own the whole process.

use std::rc::Rc;

use rdd_tensor::{Matrix, Tape, Workspace};

/// One forward + backward "epoch" of a tiny one-layer classifier, shapes
/// fixed across calls.
fn epoch(ws: &Workspace, x: &Matrix, w: &Matrix, labels: &Rc<Vec<usize>>, idx: &Rc<Vec<usize>>) {
    let mut tape = Tape::with_workspace(ws);
    let wv = tape.param_of(0, w);
    let xv = tape.constant(x.clone());
    let h = tape.matmul(xv, wv);
    let a = tape.relu(h);
    let logp = tape.log_softmax(a);
    let loss = tape.nll_masked(logp, Rc::clone(labels), Rc::clone(idx));
    let grads = tape.backward(loss, 1);
    assert!(grads[0].is_some(), "parameter gradient missing");
    ws.give_grads(grads);
}

#[test]
fn second_epoch_allocates_nothing_and_counters_reach_the_trace() {
    let path = std::env::temp_dir().join(format!("rdd_ws_pool_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    rdd_obs::init_file(&path).expect("init trace sink");

    let ws = Workspace::with_pooling(true);
    let x = Matrix::from_vec(8, 4, (0..32).map(|i| (i as f32) * 0.1 - 1.5).collect());
    let w = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.05 - 0.3).collect());
    let labels = Rc::new(vec![0usize, 1, 2, 0, 1, 2, 0, 1]);
    let idx = Rc::new((0..8).collect::<Vec<usize>>());

    epoch(&ws, &x, &w, &labels, &idx);
    let after_first = ws.stats();
    assert!(after_first.misses > 0, "first epoch must populate the pool");
    assert!(
        after_first.retained_bytes > 0,
        "tape drop must return buffers"
    );

    epoch(&ws, &x, &w, &labels, &idx);
    let after_second = ws.stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second identical epoch must be allocation-free (all takes hit)"
    );
    assert!(
        after_second.hits > after_first.hits,
        "second epoch never touched the pool"
    );

    // Pooling must not change the numbers: replay both epochs unpooled and
    // compare the parameter gradient bitwise.
    let grad_pooled = {
        let mut tape = Tape::with_workspace(&ws);
        let wv = tape.param_of(0, &w);
        let xv = tape.constant(x.clone());
        let h = tape.matmul(xv, wv);
        let a = tape.relu(h);
        let logp = tape.log_softmax(a);
        let loss = tape.nll_masked(logp, Rc::clone(&labels), Rc::clone(&idx));
        tape.backward(loss, 1)[0].take().expect("grad")
    };
    let grad_plain = {
        let mut tape = Tape::new();
        let wv = tape.param_of(0, &w);
        let xv = tape.constant(x.clone());
        let h = tape.matmul(xv, wv);
        let a = tape.relu(h);
        let logp = tape.log_softmax(a);
        let loss = tape.nll_masked(logp, Rc::clone(&labels), Rc::clone(&idx));
        tape.backward(loss, 1)[0].take().expect("grad")
    };
    assert_eq!(grad_pooled.shape(), grad_plain.shape());
    for (a, b) in grad_pooled.as_slice().iter().zip(grad_plain.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "pooled gradient diverged");
    }

    rdd_obs::flush();
    let src = std::fs::read_to_string(&path).expect("trace file readable");
    for counter in ["workspace.hits", "workspace.misses"] {
        assert!(
            src.lines()
                .any(|l| l.contains("\"ev\":\"counter\"") && l.contains(counter)),
            "{counter} missing from flush snapshot"
        );
    }
    assert!(
        src.lines()
            .any(|l| l.contains("\"ev\":\"gauge\"") && l.contains("workspace.bytes_retained")),
        "workspace.bytes_retained gauge missing from flush snapshot"
    );
    let _ = std::fs::remove_file(&path);
}
