//! Concurrency test: hammer the rdd-obs recorder from inside worker-pool
//! tasks and assert no event is lost or torn.
//!
//! Single `#[test]` on purpose: the recorder sink and the pool thread count
//! are process-global, so the scenario must own the whole process.

use std::sync::atomic::{AtomicUsize, Ordering};

use rdd_obs::Json;
use rdd_tensor::par::run_tasks;

const TASKS: usize = 400;

#[test]
fn pool_tasks_lose_no_events() {
    // Must be set before the first pool use — the thread count latches once.
    std::env::set_var("RDD_THREADS", "8");
    let path = std::env::temp_dir().join(format!("rdd_obs_pool_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    rdd_obs::init_file(&path).expect("init trace sink");

    let ran = AtomicUsize::new(0);
    run_tasks(TASKS, &|i| {
        ran.fetch_add(1, Ordering::Relaxed);
        rdd_obs::event(
            "hammer",
            &[
                ("idx", Json::from(i)),
                ("payload", Json::from("x".repeat(64))),
            ],
        );
    });
    assert_eq!(ran.load(Ordering::Relaxed), TASKS);
    rdd_obs::flush();

    let src = std::fs::read_to_string(&path).expect("trace file readable");
    let mut seen = vec![false; TASKS];
    for (lineno, line) in src.lines().enumerate() {
        // Every line must be standalone well-formed JSON (no torn writes).
        let obj = rdd_obs::parse(line)
            .unwrap_or_else(|e| panic!("line {}: bad JSON ({e}): {line}", lineno + 1));
        if obj.get("ev").and_then(Json::as_str) != Some("hammer") {
            continue; // pool_init / flush-time metric snapshot lines
        }
        let idx = obj
            .get("idx")
            .and_then(Json::as_f64)
            .expect("hammer event has idx") as usize;
        assert!(idx < TASKS, "idx out of range");
        assert!(!seen[idx], "duplicate event for task {idx}");
        assert_eq!(
            obj.get("payload").and_then(Json::as_str).map(str::len),
            Some(64),
            "payload truncated for task {idx}"
        );
        seen[idx] = true;
    }
    let missing = seen.iter().filter(|&&s| !s).count();
    assert_eq!(missing, 0, "{missing} of {TASKS} events lost");

    // The flush-time snapshot must include the pool's own counters.
    assert!(
        src.lines()
            .any(|l| l.contains("\"ev\":\"counter\"") && l.contains("pool.run_tasks")),
        "pool.run_tasks counter missing from flush snapshot"
    );
    let _ = std::fs::remove_file(&path);
}
