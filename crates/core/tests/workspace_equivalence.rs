//! The buffer pool must be invisible to the numerics: a full RDD run with
//! pooling on, with pooling off, and through the env-gated default must
//! produce bitwise-identical predictions; and the epoch-persistent
//! [`ReliabilityWorkspace`] must reproduce `compute_reliability` exactly
//! while reusing its buffers across calls.

use rdd_core::{compute_reliability, RddConfig, RddTrainer, ReliabilityWorkspace};
use rdd_graph::{Graph, SynthConfig};
use rdd_tensor::{seeded_rng, uniform, Workspace};

#[test]
fn pooled_and_unpooled_rdd_runs_are_bitwise_identical() {
    let data = SynthConfig::tiny().generate();
    let trainer = RddTrainer::new(RddConfig::fast());

    let pooled = trainer.run_with_workspace(&data, &Workspace::with_pooling(true));
    let unpooled = trainer.run_with_workspace(&data, &Workspace::with_pooling(false));
    // The env-gated default path (whatever RDD_WORKSPACE says) must agree
    // with both explicit modes.
    let env_gated = trainer.run(&data);

    assert_eq!(pooled.ensemble_pred, unpooled.ensemble_pred);
    assert_eq!(pooled.single_pred, unpooled.single_pred);
    assert_eq!(pooled.ensemble_pred, env_gated.ensemble_pred);
    assert_eq!(
        pooled.ensemble_test_acc.to_bits(),
        unpooled.ensemble_test_acc.to_bits()
    );
    assert_eq!(pooled.base_models.len(), unpooled.base_models.len());
    for (a, b) in pooled.base_models.iter().zip(&unpooled.base_models) {
        assert_eq!(a.alpha.to_bits(), b.alpha.to_bits(), "alpha diverged");
        assert_eq!(
            a.report.final_train_loss.to_bits(),
            b.report.final_train_loss.to_bits(),
            "training loss diverged"
        );
        assert_eq!(a.report.epochs_run, b.report.epochs_run);
    }

    // A second pooled run must not be perturbed by the warm pool left
    // behind by the first (recycled buffers carry no stale state).
    let warm = Workspace::with_pooling(true);
    let first = trainer.run_with_workspace(&data, &warm);
    let second = trainer.run_with_workspace(&data, &warm);
    assert_eq!(first.ensemble_pred, second.ensemble_pred);
    assert_eq!(
        first.ensemble_test_acc.to_bits(),
        second.ensemble_test_acc.to_bits()
    );
    let stats = warm.stats();
    assert!(stats.hits > 0, "pooled runs never reused a buffer");
}

/// A small graph with both ring structure and chords so the edge filter has
/// real work to do.
fn chorded_ring(n: usize) -> Graph {
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for i in 0..n / 2 {
        edges.push((i, i + n / 2));
    }
    Graph::from_edges(n, &edges)
}

#[test]
fn reliability_workspace_matches_compute_reliability() {
    let n = 40;
    let k = 4;
    let graph = chorded_ring(n);
    let labels: Vec<usize> = (0..n).map(|i| (i * 7) % k).collect();
    let mut is_labeled = vec![false; n];
    for i in (0..n).step_by(3) {
        is_labeled[i] = true;
    }
    let mut rng = seeded_rng(11);
    let p = 0.4;

    // One frozen teacher, many student refreshes — the hook's access
    // pattern. Every refresh must agree with a from-scratch computation.
    let teacher = uniform(n, k, 2.0, &mut rng).softmax_rows();
    let mut ws = ReliabilityWorkspace::new();
    for epoch in 0..6 {
        let student = uniform(n, k, 2.0, &mut rng).softmax_rows();
        ws.compute(&teacher, &student, &labels, &is_labeled, p, &graph);
        let fresh = compute_reliability(&teacher, &student, &labels, &is_labeled, p, &graph);
        let reused = ws.to_sets();
        assert_eq!(reused.reliable, fresh.reliable, "epoch {epoch}: V_r");
        assert_eq!(reused.distill, fresh.distill, "epoch {epoch}: V_b");
        assert_eq!(reused.edges, fresh.edges, "epoch {epoch}: E_r");
        assert_eq!(
            reused.teacher_entropy_threshold.to_bits(),
            fresh.teacher_entropy_threshold.to_bits()
        );
        assert_eq!(
            reused.student_entropy_threshold.to_bits(),
            fresh.student_entropy_threshold.to_bits()
        );
        assert_eq!(ws.num_reliable(), fresh.num_reliable());
        assert_eq!(ws.student_pred(), student.argmax_rows().as_slice());
    }

    // Teacher swap: after reset_teacher the workspace must track the new
    // teacher, not the cached one.
    let teacher2 = uniform(n, k, 2.0, &mut rng).softmax_rows();
    let student = uniform(n, k, 2.0, &mut rng).softmax_rows();
    ws.reset_teacher();
    ws.compute(&teacher2, &student, &labels, &is_labeled, p, &graph);
    let fresh = compute_reliability(&teacher2, &student, &labels, &is_labeled, p, &graph);
    assert_eq!(ws.to_sets().reliable, fresh.reliable);
    assert_eq!(ws.to_sets().distill, fresh.distill);
    assert_eq!(ws.to_sets().edges, fresh.edges);

    // The weigh_edges refill maps 1:1 over the current edge list.
    ws.weigh_edges(|(a, b)| (a + b) as f32);
    let edges = ws.edges();
    let weights = ws.edge_weights();
    assert_eq!(edges.len(), weights.len());
    for (e, w) in edges.iter().zip(weights.iter()) {
        assert_eq!((e.0 + e.1) as f32, *w);
    }
}
