//! Property-based invariants of the reliability algorithms and the
//! ensemble weighting, under randomized teacher/student outputs.

use proptest::prelude::*;
use rdd_core::{compute_reliability, cosine_gamma, model_weight, Ensemble, ReliabilityWorkspace};
use rdd_graph::Graph;
use rdd_tensor::Matrix;

/// Strategy: an `n x k` row-stochastic matrix (softmax of random logits).
fn proba(n: usize, k: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, n * k)
        .prop_map(move |v| Matrix::from_vec(n, k, v).softmax_rows())
}

fn ring(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reliability_invariants(
        teacher in proba(12, 3),
        student in proba(12, 3),
        p in 0.05f32..1.0,
        label_seed in 0u64..100,
    ) {
        let n = 12;
        let graph = ring(n);
        let labels: Vec<usize> = (0..n).map(|i| (i + label_seed as usize) % 3).collect();
        let mut is_labeled = vec![false; n];
        for i in (0..n).step_by(3) {
            is_labeled[i] = true;
        }
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, p, &graph);

        // V_b ⊆ V_r, sorted, unique.
        let mut prev = None;
        for &i in &sets.distill {
            prop_assert!(sets.reliable[i], "V_b not subset of V_r");
            if let Some(p) = prev {
                prop_assert!(i > p, "V_b not strictly sorted");
            }
            prev = Some(i);
        }

        // E_r ⊆ E with reliable, same-student-class endpoints.
        let student_pred = student.argmax_rows();
        for &(a, b) in &sets.edges {
            let (a, b) = (a as usize, b as usize);
            prop_assert!(graph.has_edge(a, b));
            prop_assert!(sets.reliable[a] && sets.reliable[b]);
            prop_assert_eq!(student_pred[a], student_pred[b]);
        }

        // Labeled-node reliability depends only on teacher correctness.
        let teacher_pred = teacher.argmax_rows();
        for i in (0..n).step_by(3) {
            prop_assert_eq!(
                sets.reliable[i],
                teacher_pred[i] == labels[i],
                "labeled node {} reliability mismatch", i
            );
        }
    }

    #[test]
    fn reliability_monotone_in_p(
        teacher in proba(15, 3),
        student in proba(15, 3),
    ) {
        // A larger p can only admit more unlabeled nodes into V_r.
        let n = 15;
        let graph = ring(n);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let is_labeled = vec![false; n];
        let small = compute_reliability(&teacher, &student, &labels, &is_labeled, 0.2, &graph);
        let large = compute_reliability(&teacher, &student, &labels, &is_labeled, 0.9, &graph);
        for i in 0..n {
            if small.reliable[i] {
                prop_assert!(large.reliable[i], "raising p removed node {} from V_r", i);
            }
        }
        prop_assert!(large.num_reliable() >= small.num_reliable());
    }

    #[test]
    fn reliability_workspace_reuse_matches_fresh_compute(
        teacher in proba(12, 3),
        s1 in proba(12, 3),
        s2 in proba(12, 3),
        p in 0.05f32..1.0,
    ) {
        // The epoch-persistent workspace (fixed teacher, varying student,
        // buffers reused in place) must track compute_reliability exactly —
        // including when an earlier student's sets were larger.
        let n = 12;
        let graph = ring(n);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut is_labeled = vec![false; n];
        for i in (0..n).step_by(4) {
            is_labeled[i] = true;
        }
        let mut ws = ReliabilityWorkspace::new();
        for student in [&s1, &s2, &s1] {
            ws.compute(&teacher, student, &labels, &is_labeled, p, &graph);
            let fresh = compute_reliability(&teacher, student, &labels, &is_labeled, p, &graph);
            let reused = ws.to_sets();
            prop_assert_eq!(reused.reliable, fresh.reliable);
            prop_assert_eq!(reused.distill, fresh.distill);
            prop_assert_eq!(reused.edges, fresh.edges);
            prop_assert_eq!(
                reused.teacher_entropy_threshold.to_bits(),
                fresh.teacher_entropy_threshold.to_bits()
            );
            prop_assert_eq!(
                reused.student_entropy_threshold.to_bits(),
                fresh.student_entropy_threshold.to_bits()
            );
        }
    }

    #[test]
    fn model_weight_positive_and_antitone_in_entropy(pr_seed in 0u64..50) {
        // Sharpening every row of a distribution must not lower the weight.
        let mut rng = rdd_tensor::seeded_rng(pr_seed);
        let base = rdd_tensor::uniform(10, 4, 2.0, &mut rng).softmax_rows();
        let sharp = base.map(|v| v.powf(2.0));
        // Renormalize the sharpened rows.
        let mut sharp = sharp;
        for i in 0..sharp.rows() {
            let s: f32 = sharp.row(i).iter().sum();
            for v in sharp.row_mut(i) {
                *v /= s;
            }
        }
        let pagerank = vec![0.1f32; 10];
        let w_base = model_weight(&base, &pagerank);
        let w_sharp = model_weight(&sharp, &pagerank);
        prop_assert!(w_base > 0.0 && w_base.is_finite());
        prop_assert!(w_sharp >= w_base, "sharper predictions lowered the weight");
    }

    #[test]
    fn ensemble_proba_rows_stochastic(
        a in proba(6, 3),
        b in proba(6, 3),
        wa in 0.1f32..10.0,
        wb in 0.1f32..10.0,
    ) {
        let mut e = Ensemble::new();
        e.push(a.clone(), a, wa);
        e.push(b.clone(), b, wb);
        let p = e.proba();
        for i in 0..6 {
            let s: f32 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {} sums to {}", i, s);
            prop_assert!(p.row(i).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn cosine_gamma_bounded_and_monotone(gi in 0.0f32..5.0, total in 1usize..500) {
        let mut prev = -1.0f32;
        for e in 0..=total {
            let g = cosine_gamma(gi, e, total);
            prop_assert!(g >= -1e-6 && g <= 2.0 * gi + 1e-4, "gamma {} out of range", g);
            prop_assert!(g >= prev - 1e-5, "gamma not monotone");
            prev = g;
        }
        // Past the horizon it clamps.
        let clamped = cosine_gamma(gi, total * 2, total);
        prop_assert!((clamped - 2.0 * gi).abs() < 1e-4);
    }
}
