//! Crash-safe cascade runs: kill a run at a deterministically injected
//! fault, resume it, and require the final ensemble to be **bitwise
//! identical** to an uninterrupted run — for each fault kind.
//!
//! Fault state is process-global (it models the `RDD_FAULT` env var), so
//! every test serializes on one mutex and disarms before releasing it.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use rdd_core::{RddConfig, RddOutcome, RddTrainer, RunError, RunState};
use rdd_graph::{Dataset, SynthConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> MutexGuard<'static, ()> {
    // A panicking test (expected: we inject panics) poisons the mutex;
    // the lock itself is still fine.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn dataset() -> Dataset {
    SynthConfig::tiny().generate()
}

fn config() -> RddConfig {
    let mut cfg = RddConfig::fast();
    cfg.num_base_models = 2;
    cfg.train.epochs = 20;
    cfg
}

fn run_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdd_crash_safe_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every externally observable number of the two outcomes must agree to
/// the bit.
fn assert_bitwise_equal(a: &RddOutcome, b: &RddOutcome) {
    assert_eq!(a.ensemble_pred, b.ensemble_pred, "ensemble predictions");
    assert_eq!(a.single_pred, b.single_pred, "single predictions");
    assert_eq!(
        a.ensemble_test_acc.to_bits(),
        b.ensemble_test_acc.to_bits(),
        "ensemble test acc"
    );
    assert_eq!(
        a.ensemble_val_acc.to_bits(),
        b.ensemble_val_acc.to_bits(),
        "ensemble val acc"
    );
    assert_eq!(
        a.single_test_acc.to_bits(),
        b.single_test_acc.to_bits(),
        "single test acc"
    );
    assert_eq!(a.base_models.len(), b.base_models.len());
    for (i, (x, y)) in a.base_models.iter().zip(&b.base_models).enumerate() {
        assert_eq!(x.alpha.to_bits(), y.alpha.to_bits(), "member {i} alpha");
        assert_eq!(x.val_acc.to_bits(), y.val_acc.to_bits(), "member {i} val");
        assert_eq!(
            x.test_acc.to_bits(),
            y.test_acc.to_bits(),
            "member {i} test"
        );
        assert_eq!(x.dropped, y.dropped, "member {i} dropped");
        assert_eq!(
            x.report.epochs_run, y.report.epochs_run,
            "member {i} epochs"
        );
        assert_eq!(
            x.report.final_train_loss.to_bits(),
            y.report.final_train_loss.to_bits(),
            "member {i} final loss"
        );
    }
    assert_eq!(
        a.prefix_ensemble_test_accs.len(),
        b.prefix_ensemble_test_accs.len()
    );
    for (x, y) in a
        .prefix_ensemble_test_accs
        .iter()
        .zip(&b.prefix_ensemble_test_accs)
    {
        assert_eq!(x.to_bits(), y.to_bits(), "prefix accuracy");
    }
}

#[test]
fn crash_safe_run_matches_plain_run_and_completes() {
    let _g = guard();
    rdd_obs::fault::disarm();
    let data = dataset();
    let cfg = config();
    let plain = RddTrainer::new(cfg.clone()).run(&data);
    let dir = run_dir("clean");
    let safe = RddTrainer::new(cfg.clone())
        .run_crash_safe(&data, &dir, "tiny")
        .expect("clean crash-safe run");
    assert_bitwise_equal(&plain, &safe);

    let state = RunState::load(&dir).expect("manifest loads");
    assert!(state.is_complete(), "manifest marked complete");
    assert_eq!(state.next_member(), 2);
    assert_eq!(state.source(), "tiny");
    assert_eq!(state.config(), &cfg);

    // A complete run refuses to resume; an existing manifest refuses a
    // fresh create.
    assert!(matches!(
        RddTrainer::resume(&dir, &data),
        Err(RunError::Unsupported(_))
    ));
    assert!(matches!(
        RunState::create(&dir, "tiny", &cfg, &data),
        Err(RunError::Unsupported(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panic_at_member_boundary_then_resume_is_bitwise_identical() {
    let _g = guard();
    rdd_obs::fault::disarm();
    let data = dataset();
    let cfg = config();
    let clean = RddTrainer::new(cfg.clone()).run(&data);

    let dir = run_dir("panic_member");
    rdd_obs::fault::arm("panic@member:1").expect("arm");
    let err = RddTrainer::new(cfg.clone())
        .run_crash_safe(&data, &dir, "tiny")
        .expect_err("injected panic must abort the run");
    rdd_obs::fault::disarm();
    match err {
        RunError::MemberPanic {
            member,
            ref message,
        } => {
            assert_eq!(member, 1);
            assert!(message.contains("injected fault"), "got {message}");
        }
        other => panic!("expected MemberPanic, got {other}"),
    }
    // Member 0 committed before the crash; the manifest is still 'running'.
    let state = RunState::load(&dir).expect("manifest loads after crash");
    assert!(!state.is_complete());
    assert_eq!(state.next_member(), 1);

    let resumed = RddTrainer::resume(&dir, &data).expect("resume");
    assert_bitwise_equal(&clean, &resumed);
    assert!(RunState::load(&dir).expect("reload").is_complete());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_io_failure_then_resume_is_bitwise_identical() {
    let _g = guard();
    rdd_obs::fault::disarm();
    let data = dataset();
    let cfg = config();
    let clean = RddTrainer::new(cfg.clone()).run(&data);

    let dir = run_dir("io_fail");
    // ckpt pass 0 is the manifest create; passes 1.. are member files. n=2
    // fails while committing member 0's outputs.
    rdd_obs::fault::arm("io_fail@ckpt:2").expect("arm");
    let err = RddTrainer::new(cfg.clone())
        .run_crash_safe(&data, &dir, "tiny")
        .expect_err("injected io failure must abort the run");
    rdd_obs::fault::disarm();
    assert!(matches!(err, RunError::Checkpoint(_)), "got {err}");

    // The failed commit left no member record and no temp litter.
    let state = RunState::load(&dir).expect("manifest loads after crash");
    assert_eq!(state.next_member(), 0);
    let litter: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(litter.is_empty(), "temp files left behind: {litter:?}");

    let resumed = RddTrainer::resume(&dir, &data).expect("resume");
    assert_bitwise_equal(&clean, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_nan_loss_recovers_in_process_bitwise_identical() {
    let _g = guard();
    rdd_obs::fault::disarm();
    let data = dataset();
    let cfg = config();
    let clean = RddTrainer::new(cfg.clone()).run(&data);

    let dir = run_dir("nan_loss");
    // Epoch pass 7 lands inside member 0's training; the divergence guard
    // replays the epoch and the run completes without restarting.
    rdd_obs::fault::arm("nan_loss@epoch:7").expect("arm");
    let out = RddTrainer::new(cfg.clone())
        .run_crash_safe(&data, &dir, "tiny")
        .expect("nan_loss recovers in process");
    rdd_obs::fault::disarm();
    assert_eq!(out.base_models[0].report.rollbacks, 1, "one free replay");
    assert!(!out.base_models[0].report.diverged);
    assert_bitwise_equal(&clean, &out);
    assert!(RunState::load(&dir).expect("manifest").is_complete());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_divergence_drops_the_member_and_the_run_degrades() {
    let _g = guard();
    rdd_obs::fault::disarm();
    let data = dataset();
    let mut cfg = config();
    // No retry budget: the first injected NaN permanently diverges member 0.
    cfg.train.divergence.max_retries = 0;

    let dir = run_dir("dropped");
    rdd_obs::fault::arm("nan_loss@epoch:0").expect("arm");
    let out = RddTrainer::new(cfg.clone())
        .run_crash_safe(&data, &dir, "tiny")
        .expect("run degrades instead of aborting");
    rdd_obs::fault::disarm();

    assert_eq!(out.base_models.len(), 2);
    assert!(out.base_models[0].dropped, "diverged member dropped");
    assert!(out.base_models[0].report.diverged);
    assert!(!out.base_models[1].dropped, "next member still trains");
    assert_eq!(
        out.prefix_ensemble_test_accs[0], 0.0,
        "empty partial ensemble before the first kept member"
    );
    assert!(
        out.ensemble_test_acc > 0.5,
        "teacherless member 1 still learns: {}",
        out.ensemble_test_acc
    );

    // The manifest records the dropped member, and reloading reproduces
    // the degraded ensemble (outputs stored only for kept members).
    let state = RunState::load(&dir).expect("manifest");
    assert!(state.is_complete());
    let members = state.load_members().expect("members load");
    assert_eq!(members.len(), 2);
    assert!(
        members[0].outputs.is_none(),
        "dropped member has no outputs"
    );
    assert!(members[1].outputs.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_member_file_fails_resume_loudly() {
    let _g = guard();
    rdd_obs::fault::disarm();
    let data = dataset();
    let cfg = config();

    let dir = run_dir("tampered");
    rdd_obs::fault::arm("panic@member:1").expect("arm");
    let _ = RddTrainer::new(cfg)
        .run_crash_safe(&data, &dir, "tiny")
        .expect_err("injected panic");
    rdd_obs::fault::disarm();

    // Tamper with the committed member's outputs: resume must refuse (the
    // stored ensemble sums no longer match the replayed members).
    let out_file = dir.join("member-000.out");
    let text = std::fs::read_to_string(&out_file).expect("read member file");
    let tampered = text.replacen("0.", "1.", 1);
    assert_ne!(tampered, text, "tampering changed something");
    std::fs::write(&out_file, tampered).expect("write tampered");
    let err = RddTrainer::resume(&dir, &data).expect_err("tampered run dir must not resume");
    assert!(
        matches!(err, RunError::Corrupt(_) | RunError::Checkpoint(_)),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
