//! Graph-data-based ensemble (paper §4.3).
//!
//! Each trained student joins the teacher ensemble with weight
//! `α_t = 1 / Σ_i I_t(x_i) · Pr(x_i)` (Eq. 12): the inverse of its total
//! prediction entropy weighted by PageRank node importance. Confident
//! predictions on structurally important nodes earn a base model more say
//! in the combined output `H_T = Σ α_t h_t` (Eq. 13).

use rdd_models::{gather_prediction, PredictError, PredictRequest, Prediction, Predictor};
use rdd_tensor::Matrix;

/// One base model's frozen outputs plus its ensemble weight.
#[derive(Clone, Debug)]
pub struct EnsembleMember {
    /// Eval-mode softmax outputs, `n x k`.
    pub proba: Matrix,
    /// Eval-mode last-layer embeddings (logits), `n x k` — the `F_t` the L2
    /// loss mimics.
    pub logits: Matrix,
    /// `α_t`.
    pub alpha: f32,
}

/// The teacher: an α-weighted combination of base model outputs.
///
/// The α-weighted sums are maintained incrementally on
/// [`Ensemble::push`], so [`Ensemble::proba`]/[`Ensemble::logits`] cost one
/// scaled copy instead of a full pass over every member.
#[derive(Clone, Debug, Default)]
pub struct Ensemble {
    members: Vec<EnsembleMember>,
    /// `Σ_t α_t · proba_t`, maintained on push.
    proba_sum: Option<Matrix>,
    /// `Σ_t α_t · logits_t`, maintained on push.
    logits_sum: Option<Matrix>,
    /// `Σ_t α_t`.
    alpha_total: f32,
}

impl Ensemble {
    /// An empty ensemble.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of base models.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no base models have been added.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member weights in insertion order.
    pub fn alphas(&self) -> Vec<f32> {
        self.members.iter().map(|m| m.alpha).collect()
    }

    /// The running `Σ_t α_t · proba_t` (None while empty). Persisted by the
    /// crash-safe run directory as a bitwise integrity check for resume.
    pub fn proba_sum(&self) -> Option<&Matrix> {
        self.proba_sum.as_ref()
    }

    /// The running `Σ_t α_t · logits_t` (None while empty).
    pub fn logits_sum(&self) -> Option<&Matrix> {
        self.logits_sum.as_ref()
    }

    /// The running `Σ_t α_t`.
    pub fn alpha_total(&self) -> f32 {
        self.alpha_total
    }

    /// Add a base model's outputs with weight `alpha`.
    pub fn push(&mut self, proba: Matrix, logits: Matrix, alpha: f32) {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "ensemble weight must be positive, got {alpha}"
        );
        if let Some(first) = self.members.first() {
            assert_eq!(first.proba.shape(), proba.shape(), "member shape mismatch");
        }
        match (&mut self.proba_sum, &mut self.logits_sum) {
            (Some(ps), Some(ls)) => {
                ps.add_scaled_assign(&proba, alpha);
                ls.add_scaled_assign(&logits, alpha);
            }
            _ => {
                self.proba_sum = Some(proba.scaled(alpha));
                self.logits_sum = Some(logits.scaled(alpha));
            }
        }
        self.alpha_total += alpha;
        self.members.push(EnsembleMember {
            proba,
            logits,
            alpha,
        });
    }

    /// The teacher's softmax output `H_T` (rows remain distributions because
    /// the weights are normalized to sum to one).
    ///
    /// # Panics
    /// On an empty ensemble; use [`Ensemble::try_proba`] for a typed error.
    pub fn proba(&self) -> Matrix {
        self.try_proba().expect("empty ensemble")
    }

    /// [`Ensemble::proba`] with the empty case as a typed error instead of
    /// a panic.
    pub fn try_proba(&self) -> Result<Matrix, PredictError> {
        let sum = self.proba_sum.as_ref().ok_or(PredictError::EmptyEnsemble)?;
        Ok(sum.scaled(1.0 / self.alpha_total))
    }

    /// The teacher's embedding `F_T` used as the L2 target (Eq. 7).
    ///
    /// # Panics
    /// On an empty ensemble; use [`Ensemble::try_logits`] for a typed error.
    pub fn logits(&self) -> Matrix {
        self.try_logits().expect("empty ensemble")
    }

    /// [`Ensemble::logits`] with the empty case as a typed error.
    pub fn try_logits(&self) -> Result<Matrix, PredictError> {
        let sum = self
            .logits_sum
            .as_ref()
            .ok_or(PredictError::EmptyEnsemble)?;
        Ok(sum.scaled(1.0 / self.alpha_total))
    }

    /// Hard predictions of the combined teacher.
    ///
    /// # Panics
    /// On an empty ensemble; use [`Ensemble::try_predict`] for a typed error.
    pub fn predict(&self) -> Vec<usize> {
        self.try_predict().expect("empty ensemble")
    }

    /// [`Ensemble::predict`] with the empty case as a typed error.
    pub fn try_predict(&self) -> Result<Vec<usize>, PredictError> {
        Ok(self.try_proba()?.argmax_rows())
    }
}

/// The frozen teacher is a [`Predictor`]: `predict_batch` answers node
/// subsets straight off the maintained `Σ α_t proba_t`, and an empty
/// ensemble is a typed [`PredictError::EmptyEnsemble`] instead of a panic.
impl Predictor for Ensemble {
    fn num_nodes(&self) -> usize {
        self.proba_sum.as_ref().map_or(0, |m| m.rows())
    }

    fn num_classes(&self) -> usize {
        self.proba_sum.as_ref().map_or(0, |m| m.cols())
    }

    fn predict_batch(&self, req: &PredictRequest) -> Result<Prediction, PredictError> {
        gather_prediction(&self.try_proba()?, req)
    }
}

/// Eq. 12: `α_t = 1 / Σ_i I_t(x_i) · Pr(x_i)`.
///
/// `uniform_weights` (the WEW ablation) replaces this with Bagging's
/// constant weighting.
pub fn model_weight(proba: &Matrix, pagerank: &[f32]) -> f32 {
    assert_eq!(proba.rows(), pagerank.len(), "pagerank length mismatch");
    let entropies = proba.row_entropy();
    let weighted: f32 = entropies.iter().zip(pagerank).map(|(&e, &pr)| e * pr).sum();
    // A perfectly confident model has zero total entropy; clamp to keep the
    // weight finite (it still dominates the ensemble).
    1.0 / weighted.max(1e-9)
}

/// The WEW ablation: every base model weighs the same.
pub fn uniform_weight() -> f32 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proba2(rows: &[[f32; 2]]) -> Matrix {
        Matrix::from_vec(rows.len(), 2, rows.iter().flatten().copied().collect())
    }

    #[test]
    fn weighted_mean_respects_alpha() {
        let mut e = Ensemble::new();
        let a = proba2(&[[1.0, 0.0]]);
        let b = proba2(&[[0.0, 1.0]]);
        e.push(a, proba2(&[[2.0, 0.0]]), 3.0);
        e.push(b, proba2(&[[0.0, 2.0]]), 1.0);
        let p = e.proba();
        assert!((p.get(0, 0) - 0.75).abs() < 1e-6);
        assert!((p.get(0, 1) - 0.25).abs() < 1e-6);
        let l = e.logits();
        assert!((l.get(0, 0) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn proba_rows_remain_distributions() {
        let mut e = Ensemble::new();
        e.push(
            proba2(&[[0.6, 0.4], [0.1, 0.9]]),
            proba2(&[[0.0, 0.0], [0.0, 0.0]]),
            0.7,
        );
        e.push(
            proba2(&[[0.2, 0.8], [0.3, 0.7]]),
            proba2(&[[0.0, 0.0], [0.0, 0.0]]),
            2.0,
        );
        let p = e.proba();
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn confident_model_gets_higher_weight() {
        let pr = vec![0.5, 0.5];
        let confident = proba2(&[[0.99, 0.01], [0.98, 0.02]]);
        let unsure = proba2(&[[0.6, 0.4], [0.55, 0.45]]);
        assert!(model_weight(&confident, &pr) > model_weight(&unsure, &pr));
    }

    #[test]
    fn pagerank_focuses_the_weight() {
        // Same entropies, but model A is unsure exactly on the high-PageRank
        // node -> lower weight than model B which is unsure on the low one.
        let pr = vec![0.9, 0.1];
        let a = proba2(&[[0.5, 0.5], [0.99, 0.01]]);
        let b = proba2(&[[0.99, 0.01], [0.5, 0.5]]);
        assert!(model_weight(&a, &pr) < model_weight(&b, &pr));
    }

    #[test]
    fn zero_entropy_model_weight_is_finite() {
        let pr = vec![1.0];
        let onehot = proba2(&[[1.0, 0.0]]);
        let w = model_weight(&onehot, &pr);
        assert!(w.is_finite() && w > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_alpha_rejected() {
        let mut e = Ensemble::new();
        e.push(proba2(&[[1.0, 0.0]]), proba2(&[[0.0, 0.0]]), 0.0);
    }

    #[test]
    fn empty_ensemble_is_a_typed_error_not_a_panic() {
        let e = Ensemble::new();
        assert_eq!(e.try_proba().unwrap_err(), PredictError::EmptyEnsemble);
        assert_eq!(e.try_logits().unwrap_err(), PredictError::EmptyEnsemble);
        assert_eq!(e.try_predict().unwrap_err(), PredictError::EmptyEnsemble);
        assert_eq!(
            e.predict_batch(&PredictRequest::all()).unwrap_err(),
            PredictError::EmptyEnsemble
        );
        assert_eq!(e.num_nodes(), 0);
        assert_eq!(e.num_classes(), 0);
    }

    #[test]
    fn ensemble_predict_batch_matches_proba_bitwise() {
        let mut e = Ensemble::new();
        e.push(
            proba2(&[[0.6, 0.4], [0.1, 0.9], [0.5, 0.5]]),
            proba2(&[[0.0, 0.0], [0.0, 0.0], [0.0, 0.0]]),
            0.7,
        );
        e.push(
            proba2(&[[0.2, 0.8], [0.3, 0.7], [0.9, 0.1]]),
            proba2(&[[0.0, 0.0], [0.0, 0.0], [0.0, 0.0]]),
            2.0,
        );
        assert_eq!(e.num_nodes(), 3);
        assert_eq!(e.num_classes(), 2);
        let full = e.proba();
        let batch = e.predict_batch(&PredictRequest::nodes(vec![2, 0])).unwrap();
        assert_eq!(batch.nodes, vec![2, 0]);
        for (r, &node) in batch.nodes.iter().enumerate() {
            let same = batch
                .proba
                .row(r)
                .iter()
                .zip(full.row(node))
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "row {r} (node {node}) not bitwise equal to proba()");
        }
        let err = e
            .predict_batch(&PredictRequest::nodes(vec![3]))
            .unwrap_err();
        assert_eq!(
            err,
            PredictError::NodeOutOfRange {
                node: 3,
                num_nodes: 3
            }
        );
    }

    #[test]
    fn predict_uses_combined_output() {
        let mut e = Ensemble::new();
        // Two weak votes for class 1 outweigh one vote for class 0 when
        // weighted up.
        e.push(proba2(&[[0.9, 0.1]]), proba2(&[[0.0, 0.0]]), 1.0);
        e.push(proba2(&[[0.2, 0.8]]), proba2(&[[0.0, 0.0]]), 5.0);
        assert_eq!(e.predict(), vec![1]);
    }
}
