//! Node and edge reliability (paper §3, Algorithms 1 and 2).
//!
//! Reliability answers "can the student trust this teacher output?":
//!
//! * A **labeled** node is reliable when the teacher classifies it
//!   correctly (its mistake would otherwise be distilled into the student).
//! * An **unlabeled** node is reliable when the teacher's softmax entropy is
//!   among the lowest `p`-percent *and* teacher and student predict the same
//!   class (the ensemble-agreement condition of §3.1).
//! * The **distillation set** `V_b` contains the reliable nodes the student
//!   still gets wrong: its prediction entropy is among the highest
//!   `p`-percent, or it disagrees with the teacher outright. These are the
//!   nodes the L2 loss (Eq. 7) pulls toward the teacher's embedding.
//! * An **edge** is reliable (Algorithm 2, Eq. 5) when both endpoints are
//!   reliable and the student assigns them the same class; only those edges
//!   enter the Laplacian regularizer (Eq. 9).
//!
//! One interpretation note: Algorithm 1's line 8 (drop nodes where student
//! and teacher disagree) is applied to unlabeled nodes only. Applying it to
//! labeled nodes would evict exactly the teacher-correct/student-wrong
//! labeled nodes that Figure 3 shows being used to *correct* the student,
//! and §3.1's summary states the agreement condition for unlabeled nodes
//! only.

use std::rc::Rc;

use rdd_graph::Graph;
use rdd_tensor::Matrix;

/// Reliability sets for one training epoch.
#[derive(Clone, Debug, Default)]
pub struct ReliabilitySets {
    /// `V_r` as a bitmap over nodes.
    pub reliable: Vec<bool>,
    /// `V_b`: reliable nodes the student learned incorrectly (sorted).
    pub distill: Vec<usize>,
    /// `E_r`: reliable edges.
    pub edges: Vec<(u32, u32)>,
    /// The teacher-entropy cut actually used for unlabeled reliability
    /// (Alg. 1 line 2); `NaN` when no percentile was applied (the WNR
    /// ablation). Surfaced in the epoch telemetry.
    pub teacher_entropy_threshold: f32,
    /// The student-entropy cut for the distillation set (Alg. 1 line 6);
    /// `NaN` when no percentile was applied.
    pub student_entropy_threshold: f32,
}

impl ReliabilitySets {
    /// Number of reliable nodes.
    pub fn num_reliable(&self) -> usize {
        self.reliable.iter().filter(|&&b| b).count()
    }
}

/// The entropy value at the `p`-fraction boundary of `entropies`, taken from
/// the `lowest` (or highest) side. `p = 0.4` returns the value such that 40%
/// of entries are at-or-below (resp. at-or-above) it. `scratch` is the
/// selection buffer (the entropies are copied into it, not mutated).
fn entropy_threshold_in(entropies: &[f32], p: f32, lowest: bool, scratch: &mut Vec<f32>) -> f32 {
    assert!((0.0..=1.0).contains(&p), "p must be a fraction");
    if entropies.is_empty() {
        return if lowest {
            f32::NEG_INFINITY
        } else {
            f32::INFINITY
        };
    }
    let k = ((entropies.len() as f32 * p).ceil() as usize).clamp(1, entropies.len());
    scratch.clear();
    scratch.extend_from_slice(entropies);
    // select_nth_unstable puts the k-th order statistic in place without a
    // full sort (the top-p ablation bench quantifies the win).
    if lowest {
        let (_, nth, _) = scratch.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
        *nth
    } else {
        let (_, nth, _) = scratch.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
        *nth
    }
}

#[cfg(test)]
fn entropy_threshold(entropies: &[f32], p: f32, lowest: bool) -> f32 {
    entropy_threshold_in(entropies, p, lowest, &mut Vec::new())
}

/// Clear an `Rc<Vec<T>>` for in-place refill. The consumer of these vectors
/// (the epoch's tape) is dropped before the next epoch's refresh, so the
/// refcount is normally back to 1 and the allocation is reused; a still-held
/// Rc falls back to a fresh one.
fn refill_rc<T>(rc: &mut Rc<Vec<T>>) -> &mut Vec<T> {
    if Rc::get_mut(rc).is_none() {
        *rc = Rc::new(Vec::new());
    }
    let v = Rc::get_mut(rc).expect("refcount is 1 after the reset above");
    v.clear();
    v
}

/// Epoch-persistent scratch for the reliability refresh (Algorithms 1–2).
///
/// The RDD loss hook recomputes the reliability sets every epoch from the
/// same teacher and the student's latest predictions. This workspace keeps
/// every intermediate — prediction/entropy vectors, the selection scratch,
/// the `reliable` bitmap and the `Rc`-shared `distill`/`edges`/`edge_weights`
/// outputs — alive across epochs so the refresh allocates nothing after the
/// first call.
///
/// The teacher side (predictions, entropies, entropy threshold) is computed
/// once on the first [`ReliabilityWorkspace::compute`] and cached: the
/// teacher ensemble is frozen for the duration of one student's training.
/// Call [`ReliabilityWorkspace::reset_teacher`] (or use a fresh workspace)
/// when the teacher or `p` changes.
#[derive(Default)]
pub struct ReliabilityWorkspace {
    teacher_ready: bool,
    teacher_pred: Vec<usize>,
    teacher_entropy: Vec<f32>,
    teacher_thresh: f32,
    student_pred: Vec<usize>,
    student_entropy: Vec<f32>,
    select_scratch: Vec<f32>,
    student_thresh: f32,
    reliable: Vec<bool>,
    distill: Rc<Vec<usize>>,
    edges: Rc<Vec<(u32, u32)>>,
    edge_weights: Rc<Vec<f32>>,
}

impl ReliabilityWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop the cached teacher-side data (call when the teacher matrix or
    /// the reliability fraction changes).
    pub fn reset_teacher(&mut self) {
        self.teacher_ready = false;
    }

    /// Algorithms 1 + 2 into this workspace's buffers; results are read via
    /// the accessors. Semantically identical to [`compute_reliability`]
    /// (enforced by test), without the per-call allocations.
    pub fn compute(
        &mut self,
        teacher_proba: &Matrix,
        student_proba: &Matrix,
        labels: &[usize],
        is_labeled: &[bool],
        p: f32,
        graph: &Graph,
    ) {
        let n = teacher_proba.rows();
        assert_eq!(student_proba.rows(), n, "teacher/student row mismatch");
        assert_eq!(labels.len(), n);
        assert_eq!(is_labeled.len(), n);

        if !self.teacher_ready {
            teacher_proba.argmax_rows_into(&mut self.teacher_pred);
            teacher_proba.row_entropy_into(&mut self.teacher_entropy);
            // Line 2: ascending sort of teacher entropies -> low threshold.
            self.teacher_thresh =
                entropy_threshold_in(&self.teacher_entropy, p, true, &mut self.select_scratch);
            self.teacher_ready = true;
        }
        student_proba.argmax_rows_into(&mut self.student_pred);
        student_proba.row_entropy_into(&mut self.student_entropy);
        // Line 6: descending sort of student entropies -> high threshold.
        self.student_thresh =
            entropy_threshold_in(&self.student_entropy, p, false, &mut self.select_scratch);

        self.reliable.clear();
        self.reliable.resize(n, false);
        for i in 0..n {
            if is_labeled[i] {
                // Line 4 / §3.1(1): the teacher's prediction matches the label.
                self.reliable[i] = self.teacher_pred[i] == labels[i];
            } else {
                // Lines 7–8 / §3.1(2): confident teacher + student agreement.
                self.reliable[i] = self.teacher_entropy[i] <= self.teacher_thresh
                    && self.teacher_pred[i] == self.student_pred[i];
            }
        }

        // Line 9: V_b = reliable nodes the student is unsure or wrong about.
        let distill = refill_rc(&mut self.distill);
        for i in 0..n {
            if self.reliable[i]
                && (self.student_entropy[i] >= self.student_thresh
                    || self.student_pred[i] != self.teacher_pred[i])
            {
                distill.push(i);
            }
        }

        // Algorithm 2: reliable edges.
        let edges = refill_rc(&mut self.edges);
        for &(a, b) in graph.edges() {
            let (ai, bi) = (a as usize, b as usize);
            if self.reliable[ai]
                && self.reliable[bi]
                && self.student_pred[ai] == self.student_pred[bi]
            {
                edges.push((a, b));
            }
        }
    }

    /// The WNR ablation ([`all_nodes_reliable`]) into this workspace:
    /// classical KD distills every node, and edge reliability reduces to the
    /// student's class agreement.
    pub fn compute_all_reliable(&mut self, student_proba: &Matrix, graph: &Graph) {
        let n = student_proba.rows();
        student_proba.argmax_rows_into(&mut self.student_pred);
        self.reliable.clear();
        self.reliable.resize(n, true);
        let distill = refill_rc(&mut self.distill);
        distill.extend(0..n);
        let edges = refill_rc(&mut self.edges);
        for &(a, b) in graph.edges() {
            if self.student_pred[a as usize] == self.student_pred[b as usize] {
                edges.push((a, b));
            }
        }
        self.teacher_thresh = f32::NAN;
        self.student_thresh = f32::NAN;
    }

    /// Refill the per-edge weight vector as `f(edge)` over the current
    /// reliable edges.
    pub fn weigh_edges(&mut self, f: impl Fn((u32, u32)) -> f32) {
        let edges = Rc::clone(&self.edges);
        let weights = refill_rc(&mut self.edge_weights);
        weights.extend(edges.iter().map(|&e| f(e)));
    }

    /// `V_r` as a bitmap over nodes.
    pub fn reliable(&self) -> &[bool] {
        &self.reliable
    }

    /// Number of reliable nodes.
    pub fn num_reliable(&self) -> usize {
        self.reliable.iter().filter(|&&b| b).count()
    }

    /// `V_b` (sorted), shared with the tape's loss nodes.
    pub fn distill(&self) -> Rc<Vec<usize>> {
        Rc::clone(&self.distill)
    }

    /// `E_r`, shared with the tape's regularizer node.
    pub fn edges(&self) -> Rc<Vec<(u32, u32)>> {
        Rc::clone(&self.edges)
    }

    /// The weights from the last [`ReliabilityWorkspace::weigh_edges`].
    pub fn edge_weights(&self) -> Rc<Vec<f32>> {
        Rc::clone(&self.edge_weights)
    }

    /// The student's hard predictions from the last refresh.
    pub fn student_pred(&self) -> &[usize] {
        &self.student_pred
    }

    /// Teacher entropy cut (Alg. 1 line 2); `NaN` under WNR.
    pub fn teacher_entropy_threshold(&self) -> f32 {
        self.teacher_thresh
    }

    /// Student entropy cut (Alg. 1 line 6); `NaN` under WNR.
    pub fn student_entropy_threshold(&self) -> f32 {
        self.student_thresh
    }

    /// Snapshot the current buffers as owned [`ReliabilitySets`].
    pub fn to_sets(&self) -> ReliabilitySets {
        ReliabilitySets {
            reliable: self.reliable.clone(),
            distill: self.distill.as_ref().clone(),
            edges: self.edges.as_ref().clone(),
            teacher_entropy_threshold: self.teacher_thresh,
            student_entropy_threshold: self.student_thresh,
        }
    }
}

/// Compute the reliability sets (Algorithms 1 + 2) from the teacher's and
/// student's current softmax outputs.
///
/// * `teacher_proba`, `student_proba` — `n x k` row-stochastic matrices.
/// * `labels`, `is_labeled` — ground truth and the training-label bitmap
///   (only training labels are consulted, per the transductive protocol).
/// * `p` — the reliability fraction (paper default 0.4).
pub fn compute_reliability(
    teacher_proba: &Matrix,
    student_proba: &Matrix,
    labels: &[usize],
    is_labeled: &[bool],
    p: f32,
    graph: &Graph,
) -> ReliabilitySets {
    let mut ws = ReliabilityWorkspace::new();
    ws.compute(teacher_proba, student_proba, labels, is_labeled, p, graph);
    ws.to_sets()
}

/// `V_b` when node reliability is disabled (the WNR ablation): classical KD
/// distills *every* node, and every node counts as reliable for the edge
/// criterion.
pub fn all_nodes_reliable(n: usize, graph: &Graph, student_pred: &[usize]) -> ReliabilitySets {
    let edges = graph
        .edges()
        .iter()
        .copied()
        .filter(|&(a, b)| student_pred[a as usize] == student_pred[b as usize])
        .collect();
    ReliabilitySets {
        reliable: vec![true; n],
        distill: (0..n).collect(),
        edges,
        teacher_entropy_threshold: f32::NAN,
        student_entropy_threshold: f32::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::Graph;

    /// 4 nodes, path graph, 2 classes.
    fn setup() -> (Graph, Vec<usize>, Vec<bool>) {
        let graph = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let labels = vec![0, 0, 1, 1];
        let is_labeled = vec![true, false, false, true];
        (graph, labels, is_labeled)
    }

    fn proba(rows: &[[f32; 2]]) -> Matrix {
        Matrix::from_vec(rows.len(), 2, rows.iter().flatten().copied().collect())
    }

    #[test]
    fn labeled_reliability_follows_teacher_correctness() {
        let (graph, labels, is_labeled) = setup();
        // Teacher: node0 correct (class 0), node3 wrong (predicts 0).
        let teacher = proba(&[[0.9, 0.1], [0.8, 0.2], [0.2, 0.8], [0.7, 0.3]]);
        let student = proba(&[[0.9, 0.1], [0.8, 0.2], [0.2, 0.8], [0.6, 0.4]]);
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, 1.0, &graph);
        assert!(sets.reliable[0], "teacher correct on labeled node 0");
        assert!(!sets.reliable[3], "teacher wrong on labeled node 3");
    }

    #[test]
    fn unlabeled_needs_low_entropy_and_agreement() {
        let (graph, labels, is_labeled) = setup();
        // Node 1: teacher confident, agrees with student -> reliable.
        // Node 2: teacher confident but disagrees with student -> unreliable.
        let teacher = proba(&[[0.9, 0.1], [0.99, 0.01], [0.99, 0.01], [0.1, 0.9]]);
        let student = proba(&[[0.9, 0.1], [0.9, 0.1], [0.1, 0.9], [0.1, 0.9]]);
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, 1.0, &graph);
        assert!(sets.reliable[1]);
        assert!(!sets.reliable[2], "student disagreement blocks reliability");
    }

    #[test]
    fn entropy_threshold_limits_unlabeled_reliable() {
        let (graph, labels, is_labeled) = setup();
        // Both unlabeled nodes agree with teacher, but node 2's teacher
        // entropy is much higher. With p small only node 1 passes.
        let teacher = proba(&[[0.9, 0.1], [0.999, 0.001], [0.55, 0.45], [0.1, 0.9]]);
        let student = proba(&[[0.9, 0.1], [0.9, 0.1], [0.6, 0.4], [0.1, 0.9]]);
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, 0.25, &graph);
        assert!(sets.reliable[1]);
        assert!(
            !sets.reliable[2],
            "high-entropy teacher output is unreliable"
        );
    }

    #[test]
    fn distill_set_contains_uncertain_or_disagreeing_reliable_nodes() {
        let (graph, labels, is_labeled) = setup();
        // Node 0 labeled+reliable, student very confident -> not distilled.
        // Node 3 labeled, teacher correct, student wrong -> distilled.
        let teacher = proba(&[[0.99, 0.01], [0.99, 0.01], [0.01, 0.99], [0.01, 0.99]]);
        let student = proba(&[[0.99, 0.01], [0.99, 0.01], [0.05, 0.95], [0.9, 0.1]]);
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, 0.5, &graph);
        assert!(sets.reliable[3]);
        assert!(
            sets.distill.contains(&3),
            "student-wrong labeled node must be distilled"
        );
        assert!(
            !sets.distill.contains(&0),
            "student-confident correct node is not distilled"
        );
    }

    #[test]
    fn distill_subset_of_reliable() {
        let (graph, labels, is_labeled) = setup();
        let teacher = proba(&[[0.9, 0.1], [0.7, 0.3], [0.3, 0.7], [0.2, 0.8]]);
        let student = proba(&[[0.6, 0.4], [0.5, 0.5], [0.5, 0.5], [0.4, 0.6]]);
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, 0.5, &graph);
        for &i in &sets.distill {
            assert!(sets.reliable[i], "V_b must be a subset of V_r");
        }
    }

    #[test]
    fn reliable_edges_require_reliable_same_class_endpoints() {
        let (graph, labels, is_labeled) = setup();
        // All nodes reliable; student splits classes between 1|2.
        let teacher = proba(&[[0.99, 0.01], [0.99, 0.01], [0.01, 0.99], [0.01, 0.99]]);
        let student = proba(&[[0.9, 0.1], [0.9, 0.1], [0.1, 0.9], [0.1, 0.9]]);
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, 1.0, &graph);
        // Edges: (0,1) same class, (1,2) cross-class, (2,3) same class.
        assert!(sets.edges.contains(&(0, 1)));
        assert!(!sets.edges.contains(&(1, 2)), "cross-class edge excluded");
        assert!(sets.edges.contains(&(2, 3)));
    }

    #[test]
    fn edges_dropped_when_endpoint_unreliable() {
        let (graph, labels, is_labeled) = setup();
        // Node 0 labeled but teacher wrong -> unreliable -> edge (0,1) out.
        let teacher = proba(&[[0.1, 0.9], [0.99, 0.01], [0.01, 0.99], [0.01, 0.99]]);
        let student = proba(&[[0.9, 0.1], [0.9, 0.1], [0.1, 0.9], [0.1, 0.9]]);
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, 1.0, &graph);
        assert!(!sets.edges.contains(&(0, 1)));
    }

    #[test]
    fn p_zero_still_selects_at_least_one() {
        let (graph, labels, is_labeled) = setup();
        let teacher = proba(&[[0.9, 0.1], [0.99, 0.01], [0.8, 0.2], [0.1, 0.9]]);
        let student = teacher.clone();
        // p=0 clamps to one node; must not panic.
        let sets = compute_reliability(&teacher, &student, &labels, &is_labeled, 0.0, &graph);
        assert!(sets.num_reliable() >= 1);
    }

    #[test]
    fn wnr_variant_distills_everything() {
        let (graph, _labels, _) = setup();
        let student_pred = vec![0, 0, 1, 1];
        let sets = all_nodes_reliable(4, &graph, &student_pred);
        assert_eq!(sets.distill.len(), 4);
        assert_eq!(sets.num_reliable(), 4);
        assert_eq!(
            sets.edges.len(),
            2,
            "cross-class edge still excluded by C matrix"
        );
    }

    #[test]
    fn threshold_with_ties_is_stable() {
        let e = vec![1.0f32, 1.0, 1.0, 1.0];
        assert_eq!(entropy_threshold(&e, 0.5, true), 1.0);
        assert_eq!(entropy_threshold(&e, 0.5, false), 1.0);
    }
}
