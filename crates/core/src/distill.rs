//! Post-hoc distillation of the frozen RDD ensemble into a graph-free MLP
//! student (the KRD/GLNN direction).
//!
//! The RDD cascade ends with a teacher ensemble whose outputs exist only
//! for the nodes it trained on. [`distill_mlp`] trains an [`MlpModel`] on
//! raw node features against that frozen teacher so the knowledge becomes
//! **portable**: the student answers arbitrary unseen feature vectors with
//! two or three dense matmuls and no adjacency.
//!
//! The objective reuses the paper's own reliability machinery (Algorithm 1)
//! as the KD sample weighting:
//!
//! ```text
//! L = CE(student, y)               over labeled training nodes
//!   + λ · (1/|V_r|) Σ_{i ∈ V_r} KL(teacher_i ‖ student_i)
//! ```
//!
//! where `V_r` is the *final* reliability set — computed once from the
//! frozen ensemble and the run's last base model (Alg. 1's teacher/student
//! pair at the moment the cascade stopped) — and the KL reduces to soft
//! cross-entropy against the teacher distribution (the entropy of the
//! frozen teacher is constant). Unreliable nodes contribute nothing: the
//! teacher's mistakes are not distilled, exactly as in train-time RDD.

use std::rc::Rc;
use std::time::Instant;

use rdd_graph::Dataset;
use rdd_models::{
    train_in, ConfigError, GraphContext, MlpConfig, MlpModel, PredictorExt, TrainConfig,
    TrainReport,
};
use rdd_tensor::{seeded_rng, Matrix, Tape, Var, Workspace};

use crate::ensemble::Ensemble;
use crate::reliability::compute_reliability;
use crate::run::{RunError, RunState};

/// Configuration of the MLP distillation pass.
#[derive(Clone, Debug, PartialEq)]
pub struct DistillConfig {
    /// Student architecture (2–3 `Linear+ReLU` layers on raw features).
    pub mlp: MlpConfig,
    /// Optimization settings (Adam + early stopping, like every model).
    pub train: TrainConfig,
    /// λ, the weight on the reliability-weighted KD term.
    pub lambda_kd: f32,
    /// `p`, the reliability fraction used for the final sets (match the
    /// run's own `p` unless experimenting).
    pub p: f32,
    /// Seed for student init and dropout streams.
    pub seed: u64,
}

impl DistillConfig {
    /// Paper-shaped defaults: the standard student, citation-network
    /// optimization, λ = 1, p = 0.4.
    pub fn standard() -> Self {
        Self {
            mlp: MlpConfig::student(),
            train: TrainConfig::citation(),
            lambda_kd: 1.0,
            p: 0.4,
            seed: 1,
        }
    }

    /// A small-budget configuration for tests.
    pub fn fast() -> Self {
        Self {
            train: TrainConfig::fast(),
            ..Self::standard()
        }
    }

    /// Reject out-of-range values with a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.lambda_kd.is_finite() && self.lambda_kd >= 0.0) {
            return Err(ConfigError::invalid(
                "distill.lambda_kd",
                self.lambda_kd,
                "a finite KD weight >= 0",
            ));
        }
        if !(self.p.is_finite() && self.p > 0.0 && self.p <= 1.0) {
            return Err(ConfigError::invalid(
                "distill.p",
                self.p,
                "a reliability fraction in (0, 1]",
            ));
        }
        self.train.validate()
    }
}

/// Everything the CLI and tests read off a finished distillation.
pub struct DistillOutcome {
    /// The trained student, holding its best-validation parameters.
    pub student: MlpModel,
    /// Student validation accuracy (transductive, on the training graph).
    pub student_val_acc: f32,
    /// Student test accuracy.
    pub student_test_acc: f32,
    /// The frozen teacher ensemble's test accuracy, for the gap table.
    pub ensemble_test_acc: f32,
    /// `|V_r|`: how many nodes passed the final reliability check and
    /// carried KD weight.
    pub num_reliable: usize,
    /// How many labeled training nodes fed the CE term.
    pub num_labeled: usize,
    /// The student's training report (epochs, rollbacks, divergence flag).
    pub report: TrainReport,
    /// Total wall-clock seconds.
    pub wall_time_s: f64,
}

impl DistillOutcome {
    /// `ensemble_test_acc − student_test_acc`: how much accuracy the
    /// graph-free student gives up (positive when it trails the teacher).
    pub fn accuracy_gap(&self) -> f32 {
        self.ensemble_test_acc - self.student_test_acc
    }
}

/// Distill `teacher` into a fresh MLP student on `dataset`.
///
/// `final_student_proba` is the run's last base model's softmax output —
/// the "student" side of the final Algorithm 1 refresh. Pass `None` when
/// it is unavailable (e.g. an ad-hoc ensemble): the teacher then plays
/// both roles, which keeps the entropy cut but makes the agreement
/// condition trivially true.
pub fn distill_mlp(
    dataset: &Dataset,
    teacher: &Ensemble,
    final_student_proba: Option<&Matrix>,
    cfg: &DistillConfig,
) -> DistillOutcome {
    assert!(!teacher.is_empty(), "cannot distill an empty ensemble");
    let start = Instant::now();
    let ctx = GraphContext::new(dataset);
    let teacher_proba = teacher.proba();

    let mut is_labeled = vec![false; dataset.n()];
    for &i in &dataset.train_idx {
        is_labeled[i] = true;
    }

    // The final reliability sets (Alg. 1), computed ONCE from the frozen
    // teacher: these are the per-node KD weights for the whole distillation.
    let sets = compute_reliability(
        &teacher_proba,
        final_student_proba.unwrap_or(&teacher_proba),
        &dataset.labels,
        &is_labeled,
        cfg.p,
        &dataset.graph,
    );
    let reliable_idx: Rc<Vec<usize>> = Rc::new(
        (0..dataset.n())
            .filter(|&i| sets.reliable[i])
            .collect::<Vec<_>>(),
    );
    let kd_weights: Rc<Vec<f32>> = Rc::new(vec![1.0; reliable_idx.len()]);
    let num_reliable = reliable_idx.len();

    let mut rng = seeded_rng(cfg.seed);
    let mut student = MlpModel::new(&ctx, cfg.mlp.clone(), &mut rng);
    let ws = Workspace::new();

    let teacher_rc = Rc::new(teacher_proba.clone());
    let lambda = cfg.lambda_kd;
    let report = {
        let mut hook = move |tape: &mut Tape, logits: Var, _epoch: usize| {
            if lambda <= 0.0 || reliable_idx.is_empty() {
                return Vec::new();
            }
            let logp = tape.log_softmax(logits);
            let kd = tape.soft_ce_weighted(
                logp,
                Rc::clone(&teacher_rc),
                Rc::clone(&reliable_idx),
                Rc::clone(&kd_weights),
            );
            vec![(kd, lambda)]
        };
        train_in(
            &mut student,
            &ctx,
            dataset,
            &cfg.train,
            &mut rng,
            Some(&mut hook),
            &ws,
        )
    };

    let student_pred = student.predictor_in(&ctx, &ws).predict();
    let student_test_acc = dataset.test_accuracy(&student_pred);
    let student_val_acc = dataset.val_accuracy(&student_pred);
    let ensemble_test_acc = dataset.test_accuracy(&teacher_proba.argmax_rows());
    rdd_obs::emit_distill(
        student_test_acc,
        student_val_acc,
        ensemble_test_acc,
        ensemble_test_acc - student_test_acc,
        num_reliable,
        dataset.train_idx.len(),
        lambda,
        report.epochs_run,
    );
    rdd_obs::flush();

    DistillOutcome {
        student,
        student_val_acc,
        student_test_acc,
        ensemble_test_acc,
        num_reliable,
        num_labeled: dataset.train_idx.len(),
        report,
        wall_time_s: start.elapsed().as_secs_f64(),
    }
}

/// [`distill_mlp`] against a completed crash-safe run directory: reload the
/// committed ensemble sums and the last kept member's outputs (the final
/// Algorithm 1 student side), then distill.
pub fn distill_run(
    state: &RunState,
    dataset: &Dataset,
    cfg: &DistillConfig,
) -> Result<DistillOutcome, RunError> {
    if !state.is_complete() {
        return Err(RunError::Unsupported(format!(
            "run directory {} is not complete; finish or resume it before distilling",
            state.dir().display()
        )));
    }
    state.check_dataset(dataset)?;
    let ensemble = state.load_ensemble()?;
    let members = state.load_members()?;
    let last_proba = members
        .iter()
        .rev()
        .find_map(|m| m.outputs.as_ref().map(|(p, _)| p.clone()));
    Ok(distill_mlp(dataset, &ensemble, last_proba.as_ref(), cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdd::{RddConfig, RddTrainer};
    use rdd_graph::SynthConfig;

    fn quick_teacher(data: &Dataset) -> Ensemble {
        let mut cfg = RddConfig::fast();
        cfg.num_base_models = 2;
        let trainer = RddTrainer::new(cfg);
        let out = trainer.run(data);
        assert!(out.ensemble_test_acc > 0.5);
        // Rebuild the ensemble from the outcome-facing API: train again is
        // wasteful, so reuse the trainer's members via a fresh tiny run.
        let mut e = Ensemble::new();
        // The outcome only exposes predictions; run the cheap path instead:
        // push the ensemble-level proba as a single pseudo-member. Tests
        // that need a true multi-member teacher use distill_run.
        let n = data.n();
        let k = data.num_classes;
        let mut proba = Matrix::zeros(n, k);
        for (i, &c) in out.ensemble_pred.iter().enumerate() {
            for j in 0..k {
                proba.set(i, j, if j == c { 0.9 } else { 0.1 / (k - 1) as f32 });
            }
        }
        e.push(proba.clone(), proba, 1.0);
        e
    }

    #[test]
    fn config_validates() {
        DistillConfig::standard().validate().unwrap();
        DistillConfig::fast().validate().unwrap();
        let mut bad = DistillConfig::fast();
        bad.lambda_kd = f32::NAN;
        assert_eq!(bad.validate().unwrap_err().field, "distill.lambda_kd");
        let mut bad = DistillConfig::fast();
        bad.p = 0.0;
        assert_eq!(bad.validate().unwrap_err().field, "distill.p");
    }

    #[test]
    fn distills_close_to_teacher_on_tiny() {
        let data = SynthConfig::tiny().generate();
        let teacher = quick_teacher(&data);
        let cfg = DistillConfig::fast();
        let out = distill_mlp(&data, &teacher, None, &cfg);
        assert!(out.num_reliable > 0, "some nodes must be reliable");
        assert!(
            out.student_test_acc > 0.5,
            "student acc {}",
            out.student_test_acc
        );
        assert!(
            out.accuracy_gap() < 0.25,
            "student trails teacher by {} ({} vs {})",
            out.accuracy_gap(),
            out.student_test_acc,
            out.ensemble_test_acc
        );
    }

    #[test]
    fn kd_term_moves_student_toward_teacher() {
        // With λ > 0 the student should agree with the teacher on more
        // nodes than a purely supervised twin (same seed, same budget).
        let data = SynthConfig::tiny().generate();
        let teacher = quick_teacher(&data);
        let teacher_pred = teacher.predict();
        let agree = |pred: &[usize]| {
            pred.iter()
                .zip(&teacher_pred)
                .filter(|(a, b)| a == b)
                .count()
        };
        let mut kd_cfg = DistillConfig::fast();
        kd_cfg.lambda_kd = 2.0;
        let with_kd = distill_mlp(&data, &teacher, None, &kd_cfg);
        let mut plain_cfg = DistillConfig::fast();
        plain_cfg.lambda_kd = 0.0;
        let without = distill_mlp(&data, &teacher, None, &plain_cfg);
        let (a, b) = (
            agree(
                &with_kd
                    .student
                    .predictor_in(&GraphContext::new(&data), &Workspace::new())
                    .predict(),
            ),
            agree(
                &without
                    .student
                    .predictor_in(&GraphContext::new(&data), &Workspace::new())
                    .predict(),
            ),
        );
        assert!(
            a >= b,
            "KD student agrees on {a} nodes, plain student on {b}"
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let data = SynthConfig::tiny().generate();
        let teacher = quick_teacher(&data);
        let cfg = DistillConfig::fast();
        let a = distill_mlp(&data, &teacher, None, &cfg);
        let b = distill_mlp(&data, &teacher, None, &cfg);
        use rdd_models::Model as _;
        for (x, y) in a.student.params().iter().zip(b.student.params()) {
            assert!(x
                .as_slice()
                .iter()
                .zip(y.as_slice())
                .all(|(p, q)| p.to_bits() == q.to_bits()));
        }
    }
}
