//! Reliable Data Distillation — the self-boosting training loop
//! (paper §4, Algorithm 3).
//!
//! The first student is a plain GCN. Every subsequent student trains under
//! the current teacher (the α-weighted ensemble of all previous students)
//! with the three-term objective `L = L1 + γ·L2 + β·Lreg` (Eq. 10), where
//! the reliability sets behind L2 and Lreg are refreshed *every epoch* from
//! the student's current predictions (Algorithms 1–2). After training, the
//! student joins the ensemble with the PageRank-entropy weight of Eq. 12,
//! improving the teacher for the next round — the mutual-promoting cycle of
//! Figure 2.

use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

use rdd_graph::Dataset;
use rdd_models::{
    train_in, ConfigError, Gcn, GcnConfig, GraphContext, Model, PredictorExt, TrainConfig,
    TrainReport,
};
use rdd_tensor::{seeded_rng, Matrix, Tape, Var, Workspace};

use crate::ensemble::{model_weight, uniform_weight, Ensemble};
use crate::reliability::ReliabilityWorkspace;
use crate::run::{MemberRecord, PersistedMember, RunError, RunState};

/// Feature switches for the paper's Table 8 ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ablation {
    /// Use the L2 distillation loss (off = "No L2").
    pub use_l2: bool,
    /// Use the edge regularizer (off = "No Lreg").
    pub use_lreg: bool,
    /// Filter distillation by node reliability (off = "WNR": mimic every
    /// node like classical KD).
    pub use_node_reliability: bool,
    /// Filter the regularizer by edge reliability (off = "WER": plain graph
    /// Laplacian regularization over all edges).
    pub use_edge_reliability: bool,
    /// Weight base models by Eq. 12 (off = "WEW": Bagging-style uniform).
    pub use_entropy_weights: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Self {
            use_l2: true,
            use_lreg: true,
            use_node_reliability: true,
            use_edge_reliability: true,
            use_entropy_weights: true,
        }
    }
}

impl Ablation {
    /// "No L2" row of Table 8.
    pub fn no_l2() -> Self {
        Self {
            use_l2: false,
            ..Self::default()
        }
    }

    /// "No Lreg" row of Table 8.
    pub fn no_lreg() -> Self {
        Self {
            use_lreg: false,
            ..Self::default()
        }
    }

    /// "WNR" — without node reliability.
    pub fn without_node_reliability() -> Self {
        Self {
            use_node_reliability: false,
            ..Self::default()
        }
    }

    /// "WER" — without edge reliability.
    pub fn without_edge_reliability() -> Self {
        Self {
            use_edge_reliability: false,
            ..Self::default()
        }
    }

    /// "WKR" — without knowledge reliability (neither node nor edge).
    pub fn without_knowledge_reliability() -> Self {
        Self {
            use_node_reliability: false,
            use_edge_reliability: false,
            ..Self::default()
        }
    }

    /// "WEW" — without the entropy/PageRank ensemble weighting.
    pub fn without_entropy_weights() -> Self {
        Self {
            use_entropy_weights: false,
            ..Self::default()
        }
    }
}

/// What the L2 loss (Eq. 7) pulls the student toward on the distillation
/// set `V_b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DistillTarget {
    /// Mimic the teacher's last-layer embedding (the paper's Eq. 7 reading:
    /// `‖f_t(x) − F_{t−1}(x)‖²` on pre-softmax outputs).
    Logits,
    /// Mimic the teacher's softmax distribution with an L2 match
    /// (scale-invariant across ensemble members).
    #[default]
    Probs,
    /// Soft cross-entropy against the teacher distribution (Hinton-style
    /// dark knowledge).
    SoftCe,
}

/// Full RDD configuration (paper §5.1 defaults via [`RddConfig::citation`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RddConfig {
    /// `T`, the number of base models (the paper ensembles five).
    pub num_base_models: usize,
    /// `p`, the reliability fraction (paper default 0.4).
    pub p: f32,
    /// `β`, the edge-regularizer strength (paper default 10).
    pub beta: f32,
    /// `γ_initial` for the cosine-annealed knowledge-transfer weight
    /// (paper: 1 Cora, 3 Citeseer/Pubmed, 0.01 NELL).
    pub gamma_initial: f32,
    /// Horizon `E` of the cosine anneal (Eq. 14). The paper anneals over the
    /// full 500-epoch budget, but early stopping typically ends a student
    /// near epoch 100–150; annealing over the *typical* run length keeps the
    /// schedule meaningful.
    pub gamma_epochs: usize,
    /// Base-model architecture.
    pub gcn: GcnConfig,
    /// Optimization settings shared by every base model.
    pub train: TrainConfig,
    /// Which teacher signal the L2 loss matches on `V_b`.
    pub distill: DistillTarget,
    /// Table 8 ablation switches.
    pub ablation: Ablation,
    /// Seed for initialization and dropout; base model `t` derives its own
    /// stream from `seed + t`.
    pub seed: u64,
}

impl RddConfig {
    /// The raw citation-network defaults (γ_initial = 1) every builder
    /// starts from. Private so public construction stays validated.
    fn preset_base() -> Self {
        Self {
            num_base_models: 5,
            p: 0.4,
            beta: 10.0,
            gamma_initial: 1.0,
            gamma_epochs: 150,
            distill: DistillTarget::default(),
            gcn: GcnConfig::citation(),
            train: TrainConfig::citation(),
            ablation: Ablation::default(),
            seed: 1,
        }
    }

    /// A validating builder seeded with the citation-network defaults
    /// (γ_initial = 1).
    pub fn builder() -> RddConfigBuilder {
        RddConfigBuilder {
            cfg: Self::preset_base(),
        }
    }

    /// A builder seeded with this configuration's current values.
    pub fn to_builder(&self) -> RddConfigBuilder {
        RddConfigBuilder { cfg: self.clone() }
    }

    /// The checks behind [`RddConfigBuilder::build`], callable on a
    /// hand-edited (struct-update) configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_base_models < 1 {
            return Err(ConfigError::invalid(
                "rdd.num_base_models",
                self.num_base_models,
                ">= 1 base model",
            ));
        }
        if !(self.p.is_finite() && self.p > 0.0 && self.p <= 1.0) {
            return Err(ConfigError::invalid(
                "rdd.p",
                self.p,
                "a reliability fraction in (0, 1]",
            ));
        }
        if !(self.beta.is_finite() && self.beta >= 0.0) {
            return Err(ConfigError::invalid(
                "rdd.beta",
                self.beta,
                "a finite edge-regularizer strength >= 0",
            ));
        }
        if !(self.gamma_initial.is_finite() && self.gamma_initial >= 0.0) {
            return Err(ConfigError::invalid(
                "rdd.gamma_initial",
                self.gamma_initial,
                "a finite knowledge-transfer weight >= 0",
            ));
        }
        if self.gamma_epochs < 1 {
            return Err(ConfigError::invalid(
                "rdd.gamma_epochs",
                self.gamma_epochs,
                ">= 1 annealing epoch",
            ));
        }
        self.train.validate()
    }

    /// Paper defaults for the citation networks, with `γ_initial` supplied
    /// per dataset. A [`RddConfig::builder`] shortcut.
    pub fn citation(gamma_initial: f32) -> Self {
        Self::builder()
            .gamma(gamma_initial)
            .build()
            .expect("citation preset is valid (γ_initial must be finite >= 0)")
    }

    /// Paper defaults for NELL (`γ_initial = 0.01`, wider hidden layer,
    /// weaker L2).
    pub fn nell() -> Self {
        Self::builder()
            .gamma(0.01)
            .gcn(GcnConfig::nell())
            .train(TrainConfig::nell())
            .build()
            .expect("nell preset is valid")
    }

    /// The tuned configuration for one of the synthetic presets, by dataset
    /// name (`cora-sim`, `citeseer-sim`, `pubmed-sim`, `nell-sim`).
    ///
    /// The paper tunes `γ_initial` and `β` on each dataset's validation set
    /// (§5.1); these values are the result of the same procedure on the
    /// synthetic equivalents. The landscape differs from the paper's Table 7
    /// in one respect: the generator's mixed-membership nodes make strong
    /// graph-Laplacian smoothing counter-productive on the citation presets,
    /// so the tuned `β` is smaller than the paper's 10 except on
    /// pubmed-sim (where β = 10 does help, as in the paper).
    pub fn for_dataset(name: &str) -> Self {
        let tuned = match name {
            "cora-sim" | "cora" => Self::builder().gamma(3.0).beta(1.0),
            "citeseer-sim" | "citeseer" => Self::builder().gamma(3.0).beta(1.0),
            "pubmed-sim" | "pubmed" => Self::builder().gamma(1.0).beta(10.0),
            "nell-sim" | "nell-sim-full" | "nell" => Self::nell().to_builder().gamma(3.0).beta(1.0),
            other => panic!("no tuned RDD config for dataset {other}"),
        };
        tuned.build().expect("tuned preset is valid")
    }

    /// A small-budget configuration for tests.
    pub fn fast() -> Self {
        Self::builder()
            .num_base_models(3)
            .gamma_epochs(40)
            .train(TrainConfig::fast())
            .build()
            .expect("fast preset is valid")
    }
}

/// Validating builder for [`RddConfig`]. Seeded by [`RddConfig::builder`]
/// with the citation defaults; [`RddConfigBuilder::build`] rejects
/// out-of-range values (`p ∉ (0, 1]`, zero base models, a negative γ, a
/// nonsense nested [`TrainConfig`]) with a typed [`ConfigError`].
#[derive(Clone, Debug)]
pub struct RddConfigBuilder {
    cfg: RddConfig,
}

impl RddConfigBuilder {
    /// `T`, the number of base models (≥ 1).
    pub fn num_base_models(mut self, num_base_models: usize) -> Self {
        self.cfg.num_base_models = num_base_models;
        self
    }

    /// `p`, the reliability fraction (in (0, 1]).
    pub fn p(mut self, p: f32) -> Self {
        self.cfg.p = p;
        self
    }

    /// `β`, the edge-regularizer strength (finite, ≥ 0).
    pub fn beta(mut self, beta: f32) -> Self {
        self.cfg.beta = beta;
        self
    }

    /// `γ_initial`, the knowledge-transfer weight (finite, ≥ 0).
    pub fn gamma(self, gamma_initial: f32) -> Self {
        self.gamma_initial(gamma_initial)
    }

    /// [`RddConfigBuilder::gamma`] under the field's full name.
    pub fn gamma_initial(mut self, gamma_initial: f32) -> Self {
        self.cfg.gamma_initial = gamma_initial;
        self
    }

    /// Horizon `E` of the cosine anneal (≥ 1).
    pub fn gamma_epochs(mut self, gamma_epochs: usize) -> Self {
        self.cfg.gamma_epochs = gamma_epochs;
        self
    }

    /// Base-model architecture.
    pub fn gcn(mut self, gcn: GcnConfig) -> Self {
        self.cfg.gcn = gcn;
        self
    }

    /// Optimization settings shared by every base model.
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.cfg.train = train;
        self
    }

    /// Which teacher signal the L2 loss matches on `V_b`.
    pub fn distill(mut self, distill: DistillTarget) -> Self {
        self.cfg.distill = distill;
        self
    }

    /// Table 8 ablation switches.
    pub fn ablation(mut self, ablation: Ablation) -> Self {
        self.cfg.ablation = ablation;
        self
    }

    /// Seed for initialization and dropout.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<RddConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Eq. 14: cosine-annealed knowledge-transfer weight
/// `γ(e) = γ_init · (1 − cos(e·π/E))` — near zero early (the student's own
/// predictions are still noisy), ramping to `2·γ_init` by the last epoch.
pub fn cosine_gamma(gamma_initial: f32, epoch: usize, total_epochs: usize) -> f32 {
    let e = epoch.min(total_epochs) as f32;
    gamma_initial * (1.0 - (e * std::f32::consts::PI / total_epochs.max(1) as f32).cos())
}

/// Per-base-model record in an [`RddOutcome`].
#[derive(Clone, Debug)]
pub struct BaseModelRecord {
    /// Ensemble weight α_t (Eq. 12).
    pub alpha: f32,
    /// Validation accuracy of this base model.
    pub val_acc: f32,
    /// Test accuracy of this base model.
    pub test_acc: f32,
    /// True when the divergence guard dropped this member from the
    /// ensemble (its training never produced finite losses within the
    /// retry budget).
    pub dropped: bool,
    /// The training report of this base model.
    pub report: TrainReport,
}

/// Everything the experiments read off a finished RDD run.
#[derive(Clone, Debug)]
pub struct RddOutcome {
    /// Test accuracy of the final ensemble `H_T` ("RDD (Ensemble)").
    pub ensemble_test_acc: f32,
    /// Test accuracy of the last base model ("RDD (Single)").
    pub single_test_acc: f32,
    /// Validation accuracy of the final ensemble.
    pub ensemble_val_acc: f32,
    /// One record per base model, in training order.
    pub base_models: Vec<BaseModelRecord>,
    /// Hard predictions of the ensemble over all nodes.
    pub ensemble_pred: Vec<usize>,
    /// Hard predictions of the last single model.
    pub single_pred: Vec<usize>,
    /// Test accuracy of the ensemble truncated to its first `t+1` members —
    /// `prefix_ensemble_test_accs[t]` is the accuracy after `t+1` base
    /// models. Feeds Table 9 (models needed to reach a target accuracy).
    pub prefix_ensemble_test_accs: Vec<f32>,
    /// Total wall-clock seconds.
    pub wall_time_s: f64,
}

impl RddOutcome {
    /// Mean test accuracy of the base models (Table 6's "Average" row).
    pub fn average_base_test_acc(&self) -> f32 {
        if self.base_models.is_empty() {
            return 0.0;
        }
        self.base_models.iter().map(|b| b.test_acc).sum::<f32>() / self.base_models.len() as f32
    }
}

/// The RDD trainer. Owns nothing dataset-specific; call [`RddTrainer::run`]
/// per dataset/seed.
#[derive(Clone)]
pub struct RddTrainer {
    /// The configuration this trainer runs.
    pub config: RddConfig,
    /// Optional base-model factory. `None` uses the paper's two-layer GCN
    /// (`config.gcn`); `Some` lets any [`Model`] serve as the student —
    /// the paper notes "our method is not limited to the base model we
    /// use" and names GAT as a stronger choice (§5.3).
    #[allow(clippy::type_complexity)]
    factory: Option<Rc<dyn Fn(&GraphContext, &mut rand::rngs::StdRng) -> Box<dyn Model>>>,
}

impl RddTrainer {
    /// A trainer with the default GCN base model.
    pub fn new(config: RddConfig) -> Self {
        Self {
            config,
            factory: None,
        }
    }

    /// Use a custom base-model constructor instead of the default GCN.
    pub fn with_base_model(
        mut self,
        factory: impl Fn(&GraphContext, &mut rand::rngs::StdRng) -> Box<dyn Model> + 'static,
    ) -> Self {
        self.factory = Some(Rc::new(factory));
        self
    }

    fn new_student(&self, ctx: &GraphContext, rng: &mut rand::rngs::StdRng) -> Box<dyn Model> {
        match &self.factory {
            Some(f) => f(ctx, rng),
            None => Box::new(Gcn::new(ctx, self.config.gcn.clone(), rng)),
        }
    }

    /// Run Algorithm 3 on `dataset`, returning the outcome summary.
    ///
    /// Allocates one buffer pool for the whole cascade; use
    /// [`RddTrainer::run_with_workspace`] to share a pool across runs or to
    /// force pooling on/off regardless of `RDD_WORKSPACE`.
    pub fn run(&self, dataset: &Dataset) -> RddOutcome {
        self.run_with_workspace(dataset, &Workspace::new())
    }

    /// [`RddTrainer::run`] against a caller-owned buffer pool: every
    /// student's training epochs, eval forwards and backward gradients draw
    /// from `ws`.
    pub fn run_with_workspace(&self, dataset: &Dataset, ws: &Workspace) -> RddOutcome {
        self.run_cascade(dataset, ws, None, Vec::new())
            .expect("a non-persisted cascade has no fallible steps")
    }

    /// [`RddTrainer::run`] with crash safety: every member commits to the
    /// run directory `dir` before the next starts, member training runs
    /// under `catch_unwind`, and a killed or failed run restarts from the
    /// next member boundary via [`RddTrainer::resume`] — producing final
    /// ensemble outputs bitwise-identical to an uninterrupted run.
    ///
    /// `source` is the dataset source string (preset name or TSV directory)
    /// recorded in the manifest so `resume` can reload the same data.
    pub fn run_crash_safe(
        &self,
        dataset: &Dataset,
        dir: &Path,
        source: &str,
    ) -> Result<RddOutcome, RunError> {
        if self.factory.is_some() {
            return Err(RunError::Unsupported(
                "crash-safe runs require the default GCN base model; a custom base-model \
                 factory cannot be reconstructed from a manifest"
                    .into(),
            ));
        }
        let mut state = RunState::create(dir, source, &self.config, dataset)?;
        let ws = Workspace::new();
        let outcome = self.run_cascade(dataset, &ws, Some(&mut state), Vec::new())?;
        state.mark_complete()?;
        Ok(outcome)
    }

    /// Resume an interrupted [`RddTrainer::run_crash_safe`] run: reload the
    /// manifest, replay the committed members (verified bitwise against the
    /// stored ensemble sums), and train the remaining members. Because each
    /// member reseeds its RNG from `config.seed + t`, the completed run is
    /// bitwise-identical to one that was never interrupted.
    pub fn resume(dir: &Path, dataset: &Dataset) -> Result<RddOutcome, RunError> {
        let mut state = RunState::load(dir)?;
        if state.is_complete() {
            return Err(RunError::Unsupported(format!(
                "run directory {} is already complete; nothing to resume",
                dir.display()
            )));
        }
        state.check_dataset(dataset)?;
        let preloaded = state.load_members()?;
        rdd_obs::emit_resume(state.next_member(), preloaded.len(), &dir.to_string_lossy());
        let trainer = RddTrainer::new(state.config().clone());
        let ws = Workspace::new();
        let outcome = trainer.run_cascade(dataset, &ws, Some(&mut state), preloaded)?;
        state.mark_complete()?;
        Ok(outcome)
    }

    /// The cascade body shared by plain, crash-safe, and resumed runs.
    ///
    /// `persist` commits each member to a run directory; `preloaded`
    /// replays already-committed members instead of retraining them. With
    /// `persist = None` no step can fail (member panics propagate as they
    /// always have).
    fn run_cascade(
        &self,
        dataset: &Dataset,
        ws: &Workspace,
        mut persist: Option<&mut RunState>,
        preloaded: Vec<PersistedMember>,
    ) -> Result<RddOutcome, RunError> {
        let cfg = &self.config;
        assert!(cfg.num_base_models >= 1, "need at least one base model");
        let start = Instant::now();
        let ctx = GraphContext::new(dataset);
        // PageRank node importance (Eq. 12), computed once.
        let pagerank = dataset.graph.pagerank(0.85, 100, 1e-9);

        let mut is_labeled = vec![false; dataset.n()];
        for &i in &dataset.train_idx {
            is_labeled[i] = true;
        }

        // Degree-normalized Laplacian weights for the edge regularizer
        // (`w_ij = 1/√((d_i+1)(d_j+1))`, matching Â's renormalization): an
        // unweighted pull lets hub nodes dominate and measurably hurts
        // accuracy on the synthetic benchmarks.
        let inv_sqrt_deg: Vec<f32> = (0..dataset.n())
            .map(|i| 1.0 / ((dataset.graph.degree(i) + 1) as f32).sqrt())
            .collect();
        let edge_weight = |(a, b): (u32, u32)| inv_sqrt_deg[a as usize] * inv_sqrt_deg[b as usize];
        // The full edge list and its Laplacian weights (the WER ablation's
        // regularizer input) are member-invariant: build them once for the
        // whole cascade.
        let all_edges: Rc<Vec<(u32, u32)>> = Rc::new(dataset.graph.edges().to_vec());
        let all_edge_weights: Rc<Vec<f32>> =
            Rc::new(all_edges.iter().map(|&e| edge_weight(e)).collect());

        let mut ensemble = Ensemble::new();
        let mut members_snapshot: Vec<Option<(Matrix, Matrix)>> =
            Vec::with_capacity(cfg.num_base_models);
        let mut base_models = Vec::with_capacity(cfg.num_base_models);
        let mut last_single_pred: Vec<usize> = Vec::new();
        let mut last_single_test = 0.0f32;

        // Replay the members a resumed run already committed: their frozen
        // outputs rebuild the ensemble (and therefore the next teacher)
        // bitwise, without retraining.
        for pm in &preloaded {
            let rec = &pm.record;
            base_models.push(rec.to_base_record());
            match &pm.outputs {
                Some((proba, logits)) => {
                    last_single_pred = proba.argmax_rows();
                    last_single_test = rec.test_acc;
                    members_snapshot.push(Some((proba.clone(), logits.clone())));
                    ensemble.push(proba.clone(), logits.clone(), rec.alpha);
                }
                None => members_snapshot.push(None),
            }
        }

        for t in preloaded.len()..cfg.num_base_models {
            let mut rng = seeded_rng(cfg.seed.wrapping_add(t as u64));
            let mut student = self.new_student(&ctx, &mut rng);

            // Member training runs inside a closure so crash-safe runs can
            // isolate a panicking member with `catch_unwind` (plain runs
            // call it directly and keep today's propagation).
            let teacherless = ensemble.is_empty();
            let train_member = |student: &mut dyn Model, rng: &mut rand::rngs::StdRng| {
                if matches!(
                    rdd_obs::fault::fire("member"),
                    Some(rdd_obs::FaultKind::Panic)
                ) {
                    panic!("injected fault: panic@member:{t}");
                }
                if teacherless {
                    // Line 2: a teacherless student is a plain GCN (member 0,
                    // or a later member whose every predecessor was dropped).
                    // The hook adds no loss terms; it only stages zeroed RDD
                    // telemetry so epoch records keep a uniform schema across
                    // members (no-op with tracing off).
                    let mut hook = |_tape: &mut Tape, _logits: Var, _epoch: usize| {
                        rdd_obs::stage_rdd_epoch(rdd_obs::RddEpochExtra {
                            member: t,
                            gamma: f32::NAN,
                            agreement: f32::NAN,
                            teacher_entropy_thresh: f32::NAN,
                            student_entropy_thresh: f32::NAN,
                            ..Default::default()
                        });
                        Vec::new()
                    };
                    train_in(student, &ctx, dataset, &cfg.train, rng, Some(&mut hook), ws)
                } else {
                    // Freeze the teacher's outputs for this round.
                    let teacher_proba = ensemble.proba();
                    let teacher_proba_rc = Rc::new(teacher_proba.clone());
                    let teacher_logits = Rc::new(ensemble.logits());
                    let labels = dataset.labels.clone();
                    let graph = &dataset.graph;
                    let total_epochs = cfg.gamma_epochs;
                    let abl = cfg.ablation;
                    let distill = cfg.distill;
                    let (p, beta, gamma_initial) = (cfg.p, cfg.beta, cfg.gamma_initial);
                    let all_edges = Rc::clone(&all_edges);
                    let all_edge_weights = Rc::clone(&all_edge_weights);
                    let is_labeled_ref = &is_labeled;
                    let edge_weight = &edge_weight;
                    // Epoch-persistent reliability scratch: the teacher side is
                    // computed once (the ensemble is frozen for this member) and
                    // the student-side buffers are refilled in place each epoch.
                    let mut relia = ReliabilityWorkspace::new();
                    // Telemetry inputs, gathered only when tracing is on: the
                    // teacher's hard predictions (for the agreement rate) and the
                    // current ensemble weights (the `alpha` array of each epoch
                    // record).
                    let teacher_pred = rdd_obs::enabled().then(|| teacher_proba.argmax_rows());
                    let member_alphas = ensemble.alphas();

                    let mut hook = move |tape: &mut Tape, logits: Var, epoch: usize| {
                        let mut terms: Vec<(Var, f32)> = Vec::with_capacity(2);
                        // ONE softmax node for the epoch: its value feeds the
                        // reliability refresh below, and the same node is the
                        // `Probs` distillation output and the regularizer input —
                        // the forward work and the tape node are never duplicated.
                        let probs = tape.softmax(logits);
                        let student_proba = tape.value(probs);
                        if abl.use_node_reliability {
                            relia.compute(
                                &teacher_proba,
                                student_proba,
                                &labels,
                                is_labeled_ref,
                                p,
                                graph,
                            );
                        } else {
                            relia.compute_all_reliable(student_proba, graph);
                        }
                        let staged = teacher_pred.as_ref().map(|tp| {
                            (
                                relia.num_reliable(),
                                relia.distill().len(),
                                relia.edges().len(),
                                rdd_obs::agreement_rate(tp, relia.student_pred()),
                                relia.teacher_entropy_threshold(),
                                relia.student_entropy_threshold(),
                            )
                        });
                        let gamma = cosine_gamma(gamma_initial, epoch, total_epochs);
                        let mut l2_val = 0.0f32;
                        let mut lreg_val = 0.0f32;
                        let distill_idx = relia.distill();
                        if abl.use_l2 && !distill_idx.is_empty() {
                            if gamma > 0.0 {
                                let l2 = match distill {
                                    DistillTarget::Logits => tape.mse_rows(
                                        logits,
                                        Rc::clone(&teacher_logits),
                                        distill_idx,
                                    ),
                                    DistillTarget::Probs => tape.mse_rows(
                                        probs,
                                        Rc::clone(&teacher_proba_rc),
                                        distill_idx,
                                    ),
                                    DistillTarget::SoftCe => {
                                        let logp = tape.log_softmax(logits);
                                        tape.soft_ce_masked(
                                            logp,
                                            Rc::clone(&teacher_proba_rc),
                                            distill_idx,
                                        )
                                    }
                                };
                                if staged.is_some() {
                                    l2_val = tape.scalar(l2);
                                }
                                terms.push((l2, gamma));
                            }
                        }
                        if abl.use_lreg && beta > 0.0 {
                            let (edges, weights) = if abl.use_edge_reliability {
                                relia.weigh_edges(edge_weight);
                                (relia.edges(), relia.edge_weights())
                            } else {
                                (Rc::clone(&all_edges), Rc::clone(&all_edge_weights))
                            };
                            if !edges.is_empty() {
                                // Eq. 8's label-map f(·): regularize the
                                // predicted distributions, not raw logits —
                                // penalizing logit differences fights CE's
                                // confidence growth and hurts accuracy.
                                let lreg = tape.edge_reg_weighted(probs, edges, weights);
                                if staged.is_some() {
                                    lreg_val = tape.scalar(lreg);
                                }
                                terms.push((lreg, beta));
                            }
                        }
                        if let Some((v_r, v_b, e_r, agreement, t_thresh, s_thresh)) = staged {
                            rdd_obs::stage_rdd_epoch(rdd_obs::RddEpochExtra {
                                member: t,
                                l2: l2_val,
                                lreg: lreg_val,
                                gamma,
                                v_r,
                                v_b,
                                e_r,
                                agreement,
                                teacher_entropy_thresh: t_thresh,
                                student_entropy_thresh: s_thresh,
                                alpha: member_alphas.clone(),
                            });
                        }
                        terms
                    };
                    train_in(student, &ctx, dataset, &cfg.train, rng, Some(&mut hook), ws)
                }
            };

            let report = if persist.is_some() {
                // Crash-safe runs isolate member training: a panic becomes a
                // typed error, and the run directory still holds every member
                // committed before it — `resume` restarts at this boundary.
                match panic::catch_unwind(AssertUnwindSafe(|| {
                    train_member(student.as_mut(), &mut rng)
                })) {
                    Ok(report) => report,
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        return Err(RunError::MemberPanic { member: t, message });
                    }
                }
            } else {
                train_member(student.as_mut(), &mut rng)
            };

            // Lines 19–21: weigh and absorb the student.
            let logits = student.as_ref().predictor_in(&ctx, ws).logits();
            let proba = logits.softmax_rows();
            let alpha = if cfg.ablation.use_entropy_weights {
                model_weight(&proba, &pagerank)
            } else {
                uniform_weight()
            };
            let pred = proba.argmax_rows();
            let test_acc = dataset.test_accuracy(&pred);
            let val_acc = dataset.val_accuracy(&pred);
            rdd_obs::emit_member(t, alpha, val_acc, test_acc, report.epochs_run);

            // A member the divergence guard gave up on is dropped from the
            // ensemble: its parameters hold the best snapshot, but its
            // diverging stream would poison the teacher. The one exception
            // keeps the final member when the ensemble would otherwise end
            // empty — a weak ensemble beats none.
            let kept = !report.diverged || (ensemble.is_empty() && t + 1 == cfg.num_base_models);
            if !kept {
                rdd_obs::emit_member_dropped(t, report.rollbacks);
            }
            base_models.push(BaseModelRecord {
                alpha,
                val_acc,
                test_acc,
                dropped: !kept,
                report: report.clone(),
            });
            if kept {
                last_single_pred = pred;
                last_single_test = test_acc;
                members_snapshot.push(Some((proba.clone(), logits.clone())));
                ensemble.push(proba, logits, alpha);
            } else {
                members_snapshot.push(None);
            }
            if let Some(state) = persist.as_deref_mut() {
                let record = MemberRecord {
                    member: t,
                    kept,
                    alpha,
                    val_acc,
                    test_acc,
                    report,
                };
                let outputs = members_snapshot
                    .last()
                    .and_then(|snap| snap.as_ref().map(|(p, l)| (p, l)));
                state.record_member(student.as_ref(), outputs, record, &ensemble)?;
            }
        }

        // Prefix accuracies: rebuild the ensemble one member at a time. A
        // dropped member contributes nothing, so its slot repeats the
        // current partial accuracy (0.0 while the partial is still empty).
        let prefix_ensemble_test_accs: Vec<f32> = {
            let mut partial = Ensemble::new();
            base_models
                .iter()
                .zip(members_snapshot)
                .map(|(b, snap)| {
                    if let Some((proba, logits)) = snap {
                        partial.push(proba, logits, b.alpha);
                    }
                    if partial.is_empty() {
                        0.0
                    } else {
                        dataset.test_accuracy(&partial.predict())
                    }
                })
                .collect()
        };

        let ensemble_pred = ensemble.predict();
        let ensemble_test_acc = dataset.test_accuracy(&ensemble_pred);
        rdd_obs::emit_run(ensemble_test_acc, last_single_test, cfg.num_base_models);
        rdd_obs::flush();
        Ok(RddOutcome {
            ensemble_test_acc,
            ensemble_val_acc: dataset.val_accuracy(&ensemble_pred),
            single_test_acc: last_single_test,
            base_models,
            ensemble_pred,
            single_pred: last_single_pred,
            prefix_ensemble_test_accs,
            wall_time_s: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;

    #[test]
    fn builder_presets_validate_and_overrides_stick() {
        for cfg in [
            RddConfig::citation(3.0),
            RddConfig::nell(),
            RddConfig::fast(),
            RddConfig::for_dataset("cora-sim"),
            RddConfig::for_dataset("pubmed-sim"),
            RddConfig::for_dataset("nell-sim"),
        ] {
            cfg.validate().expect("preset must validate");
        }
        let cfg = RddConfig::builder()
            .num_base_models(2)
            .p(0.25)
            .gamma(2.5)
            .seed(9)
            .build()
            .expect("valid");
        assert_eq!(cfg.num_base_models, 2);
        assert_eq!(cfg.p, 0.25);
        assert_eq!(cfg.gamma_initial, 2.5);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn builder_rejects_nonsense_with_field_names() {
        let cases: Vec<(RddConfigBuilder, &str)> = vec![
            (
                RddConfig::builder().num_base_models(0),
                "rdd.num_base_models",
            ),
            (RddConfig::builder().p(0.0), "rdd.p"),
            (RddConfig::builder().p(1.5), "rdd.p"),
            (RddConfig::builder().p(f32::NAN), "rdd.p"),
            (RddConfig::builder().beta(-1.0), "rdd.beta"),
            (
                RddConfig::builder().gamma(f32::INFINITY),
                "rdd.gamma_initial",
            ),
            (RddConfig::builder().gamma_epochs(0), "rdd.gamma_epochs"),
        ];
        for (builder, field) in cases {
            let err = builder.build().expect_err("must be rejected");
            assert_eq!(err.field, field, "{err}");
        }
        // A nonsense nested TrainConfig is caught too (via struct-update,
        // the one construction path the builder cannot guard).
        let mut cfg = RddConfig::fast();
        cfg.train.lr = -0.5;
        let err = cfg.validate().expect_err("bad nested train config");
        assert_eq!(err.field, "train.lr");
    }

    #[test]
    fn cosine_gamma_schedule_shape() {
        let g0 = cosine_gamma(1.0, 0, 100);
        let g50 = cosine_gamma(1.0, 50, 100);
        let g100 = cosine_gamma(1.0, 100, 100);
        assert!(g0.abs() < 1e-6, "starts at zero");
        assert!((g50 - 1.0).abs() < 1e-5, "half-way equals γ_init");
        assert!((g100 - 2.0).abs() < 1e-5, "ends at 2·γ_init");
        // Monotone nondecreasing on [0, E].
        let mut prev = -1.0;
        for e in 0..=100 {
            let g = cosine_gamma(1.0, e, 100);
            assert!(g >= prev - 1e-6);
            prev = g;
        }
    }

    #[test]
    fn rdd_runs_and_reports() {
        let data = SynthConfig::tiny().generate();
        let trainer = RddTrainer::new(RddConfig::fast());
        let out = trainer.run(&data);
        assert_eq!(out.base_models.len(), 3);
        assert!(
            out.ensemble_test_acc > 0.5,
            "ensemble acc {}",
            out.ensemble_test_acc
        );
        assert!(
            out.single_test_acc > 0.5,
            "single acc {}",
            out.single_test_acc
        );
        assert!(out.base_models.iter().all(|b| b.alpha > 0.0));
        assert_eq!(out.ensemble_pred.len(), data.n());
    }

    #[test]
    fn ablations_construct_correctly() {
        assert!(!Ablation::no_l2().use_l2);
        assert!(!Ablation::no_lreg().use_lreg);
        assert!(!Ablation::without_node_reliability().use_node_reliability);
        assert!(!Ablation::without_edge_reliability().use_edge_reliability);
        let wkr = Ablation::without_knowledge_reliability();
        assert!(!wkr.use_node_reliability && !wkr.use_edge_reliability);
        assert!(!Ablation::without_entropy_weights().use_entropy_weights);
    }

    #[test]
    fn wew_uses_uniform_alphas() {
        let data = SynthConfig::tiny().generate();
        let mut cfg = RddConfig::fast();
        cfg.num_base_models = 2;
        cfg.ablation = Ablation::without_entropy_weights();
        let out = RddTrainer::new(cfg).run(&data);
        for b in &out.base_models {
            assert_eq!(b.alpha, 1.0);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let data = SynthConfig::tiny().generate();
        let mut cfg = RddConfig::fast();
        cfg.num_base_models = 2;
        cfg.train.epochs = 20;
        let a = RddTrainer::new(cfg.clone()).run(&data);
        let b = RddTrainer::new(cfg).run(&data);
        assert_eq!(a.ensemble_pred, b.ensemble_pred);
        assert!((a.ensemble_test_acc - b.ensemble_test_acc).abs() < 1e-7);
    }
}

#[cfg(test)]
mod factory_tests {
    use super::*;
    use rdd_graph::SynthConfig;
    use rdd_models::{Gat, GatConfig};

    #[test]
    fn rdd_runs_with_gat_base_model() {
        let data = SynthConfig::tiny().generate();
        let mut cfg = RddConfig::fast();
        cfg.num_base_models = 2;
        cfg.train.epochs = 40;
        cfg.train.min_epochs = 10;
        let gat_cfg = GatConfig {
            heads: 2,
            hidden_per_head: 8,
            dropout: 0.3,
            input_dropout: 0.3,
            leaky_slope: 0.2,
        };
        let out = RddTrainer::new(cfg)
            .with_base_model(move |ctx, rng| Box::new(Gat::new(ctx, gat_cfg.clone(), rng)))
            .run(&data);
        assert_eq!(out.base_models.len(), 2);
        assert!(
            out.ensemble_test_acc > 0.5,
            "GAT-based RDD acc {}",
            out.ensemble_test_acc
        );
    }
}
