//! Crash-safe run directories for the RDD cascade.
//!
//! A *run directory* makes a multi-member RDD run (Algorithm 3) resumable:
//! after every trained member the run commits a checkpoint — the member's
//! parameters, its frozen eval outputs, the ensemble's running weighted
//! sums, and a JSON manifest binding the dataset, the full [`RddConfig`]
//! and the RNG scheme. Every write is atomic (temp file + fsync + rename,
//! see [`rdd_models::checkpoint::atomic_write`]) and the manifest rewrite
//! is the commit point, so a run killed at *any* instant leaves a directory
//! describing a consistent prefix of the cascade.
//!
//! Layout (`v1`):
//!
//! ```text
//! <run-dir>/
//!   manifest.json        # status, source, dataset binding, config, rng,
//!                        # per-member records, ensemble alpha_total
//!   member-000.params    # member 0 parameters   (rdd-checkpoint v1)
//!   member-000.out       # member 0 proba+logits (rdd-checkpoint v1)
//!   ...
//!   ensemble.sums        # running α-weighted proba/logits sums
//! ```
//!
//! Because member `t` reseeds its RNG from `config.seed + t` at the member
//! boundary, resuming needs no mid-stream RNG serialization: replaying the
//! kept members' stored outputs into a fresh [`Ensemble`] (in order — the
//! running sums are order-sensitive) reconstructs the teacher bitwise, and
//! the stored sums double as an integrity checksum. `rdd resume <run-dir>`
//! therefore produces final ensemble outputs bitwise-identical to an
//! uninterrupted run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rdd_graph::Dataset;
use rdd_models::{
    checkpoint, CheckpointError, DivergencePolicy, GcnConfig, LrSchedule, Model, TrainConfig,
    TrainReport,
};
use rdd_obs::Json;
use rdd_tensor::Matrix;

use crate::ensemble::Ensemble;
use crate::rdd::{Ablation, BaseModelRecord, DistillTarget, RddConfig};

/// Manifest file name inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// Ensemble running-sums file name inside a run directory.
pub const SUMS_FILE: &str = "ensemble.sums";

/// Errors from the crash-safe run subsystem.
#[derive(Debug)]
pub enum RunError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A checkpoint file failed to write or parse.
    Checkpoint(CheckpointError),
    /// The manifest or a member file is malformed or internally
    /// inconsistent (e.g. stored ensemble sums don't match the members).
    Corrupt(String),
    /// The run directory does not bind to the given dataset/configuration.
    Mismatch(String),
    /// A member's training panicked (caught at the member boundary; the
    /// run directory still holds every member committed before it).
    MemberPanic {
        /// Cascade index of the panicking member.
        member: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The operation is not supported (custom base-model factory, already
    /// complete run, existing manifest, ...).
    Unsupported(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Io(e) => write!(f, "io error: {e}"),
            RunError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            RunError::Corrupt(m) => write!(f, "corrupt run directory: {m}"),
            RunError::Mismatch(m) => write!(f, "run/dataset mismatch: {m}"),
            RunError::MemberPanic { member, message } => {
                write!(f, "member {member} training panicked: {message}")
            }
            RunError::Unsupported(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<io::Error> for RunError {
    fn from(e: io::Error) -> Self {
        RunError::Io(e)
    }
}

impl From<CheckpointError> for RunError {
    fn from(e: CheckpointError) -> Self {
        RunError::Checkpoint(e)
    }
}

/// One member's record in the manifest: the outcome summary plus whether
/// the member is part of the ensemble (`kept = false` for members the
/// divergence guard dropped).
#[derive(Clone, Debug)]
pub struct MemberRecord {
    /// Cascade index.
    pub member: usize,
    /// Whether the member joined the ensemble.
    pub kept: bool,
    /// Ensemble weight α (meaningless when not kept).
    pub alpha: f32,
    /// Validation accuracy of the member alone.
    pub val_acc: f32,
    /// Test accuracy of the member alone.
    pub test_acc: f32,
    /// The member's training report.
    pub report: TrainReport,
}

impl MemberRecord {
    /// The [`BaseModelRecord`] view used in an [`crate::RddOutcome`].
    pub fn to_base_record(&self) -> BaseModelRecord {
        BaseModelRecord {
            alpha: self.alpha,
            val_acc: self.val_acc,
            test_acc: self.test_acc,
            dropped: !self.kept,
            report: self.report.clone(),
        }
    }
}

/// A member reloaded from a run directory: its manifest record plus, for
/// kept members, the frozen `(proba, logits)` outputs to replay into the
/// ensemble.
#[derive(Clone, Debug)]
pub struct PersistedMember {
    /// The manifest record.
    pub record: MemberRecord,
    /// `(proba, logits)` for kept members, `None` for dropped ones.
    pub outputs: Option<(Matrix, Matrix)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RunStatus {
    Running,
    Complete,
}

/// The live handle on a run directory: the in-memory manifest plus the
/// paths to commit it to.
#[derive(Debug)]
pub struct RunState {
    dir: PathBuf,
    source: String,
    dataset_name: String,
    dataset_n: usize,
    dataset_classes: usize,
    config: RddConfig,
    status: RunStatus,
    members: Vec<MemberRecord>,
    alpha_total: f32,
}

impl RunState {
    /// Start a fresh run directory: create it and commit an empty manifest.
    /// Refuses to reuse a directory that already holds a manifest (resume
    /// that instead, or pick a new directory).
    pub fn create(
        dir: &Path,
        source: &str,
        config: &RddConfig,
        dataset: &Dataset,
    ) -> Result<Self, RunError> {
        fs::create_dir_all(dir)?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(RunError::Unsupported(format!(
                "run directory {} already has a manifest; resume it or use a fresh directory",
                dir.display()
            )));
        }
        let state = Self {
            dir: dir.to_path_buf(),
            source: source.to_string(),
            dataset_name: dataset.name.clone(),
            dataset_n: dataset.n(),
            dataset_classes: dataset.num_classes,
            config: config.clone(),
            status: RunStatus::Running,
            members: Vec::new(),
            alpha_total: 0.0,
        };
        state.write_manifest()?;
        Ok(state)
    }

    /// Reload a run directory's manifest.
    pub fn load(dir: &Path) -> Result<Self, RunError> {
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path)?;
        let root = rdd_obs::parse(&text)
            .map_err(|e| RunError::Corrupt(format!("{}: {e}", path.display())))?;
        let corrupt = |m: String| RunError::Corrupt(format!("{}: {m}", path.display()));
        if str_of(&root, "format").map_err(&corrupt)? != "rdd-run-manifest" {
            return Err(corrupt("not an rdd-run-manifest".into()));
        }
        if num_of(&root, "version").map_err(&corrupt)? != 1.0 {
            return Err(corrupt("unsupported manifest version".into()));
        }
        let status = match str_of(&root, "status").map_err(&corrupt)?.as_str() {
            "running" => RunStatus::Running,
            "complete" => RunStatus::Complete,
            other => return Err(corrupt(format!("unknown status {other:?}"))),
        };
        let dataset = root
            .get("dataset")
            .ok_or_else(|| corrupt("missing \"dataset\"".into()))?;
        let config = root
            .get("config")
            .ok_or_else(|| corrupt("missing \"config\"".into()))?;
        let config = config_from_json(config).map_err(&corrupt)?;
        let members_json = match root.get("members") {
            Some(Json::Arr(items)) => items,
            _ => return Err(corrupt("missing \"members\" array".into())),
        };
        let mut members = Vec::with_capacity(members_json.len());
        for (i, m) in members_json.iter().enumerate() {
            let rec = member_from_json(m).map_err(|e| corrupt(format!("member {i}: {e}")))?;
            if rec.member != i {
                return Err(corrupt(format!(
                    "member records out of order: slot {i} holds member {}",
                    rec.member
                )));
            }
            members.push(rec);
        }
        let alpha_total = num_of(&root, "alpha_total").map_err(&corrupt)? as f32;
        Ok(Self {
            dir: dir.to_path_buf(),
            source: str_of(&root, "source").map_err(&corrupt)?,
            dataset_name: str_of(dataset, "name").map_err(&corrupt)?,
            dataset_n: usize_of(dataset, "n").map_err(&corrupt)?,
            dataset_classes: usize_of(dataset, "num_classes").map_err(&corrupt)?,
            config,
            status,
            members,
            alpha_total,
        })
    }

    /// The dataset source string recorded at creation (preset name or TSV
    /// directory), for `rdd resume` to reload the same data.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The run's full configuration, as recorded in the manifest.
    pub fn config(&self) -> &RddConfig {
        &self.config
    }

    /// The run directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the next member to train (= committed members so far).
    pub fn next_member(&self) -> usize {
        self.members.len()
    }

    /// Whether the run has committed its final member.
    pub fn is_complete(&self) -> bool {
        self.status == RunStatus::Complete
    }

    /// Name of the dataset the run was trained on.
    pub fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    /// `(n, num_classes)` of the dataset the run was trained on.
    pub fn dataset_shape(&self) -> (usize, usize) {
        (self.dataset_n, self.dataset_classes)
    }

    /// The committed member records, in training order.
    pub fn members(&self) -> &[MemberRecord] {
        &self.members
    }

    /// The manifest's running `Σ α_t` over kept members.
    pub fn alpha_total(&self) -> f32 {
        self.alpha_total
    }

    /// Rebuild the frozen teacher [`Ensemble`] from the run directory:
    /// [`RunState::load_members`] (which bitwise-verifies the replayed sums
    /// against `ensemble.sums`) plus a push per kept member. This is the
    /// export path — zero re-training.
    pub fn load_ensemble(&self) -> Result<Ensemble, RunError> {
        let mut ensemble = Ensemble::new();
        for member in self.load_members()? {
            if let Some((proba, logits)) = member.outputs {
                ensemble.push(proba, logits, member.record.alpha);
            }
        }
        Ok(ensemble)
    }

    /// Verify the manifest's dataset binding against a loaded dataset.
    pub fn check_dataset(&self, dataset: &Dataset) -> Result<(), RunError> {
        if self.dataset_name != dataset.name
            || self.dataset_n != dataset.n()
            || self.dataset_classes != dataset.num_classes
        {
            return Err(RunError::Mismatch(format!(
                "manifest binds dataset {:?} (n={}, classes={}), got {:?} (n={}, classes={})",
                self.dataset_name,
                self.dataset_n,
                self.dataset_classes,
                dataset.name,
                dataset.n(),
                dataset.num_classes
            )));
        }
        Ok(())
    }

    fn member_params_path(&self, t: usize) -> PathBuf {
        self.dir.join(format!("member-{t:03}.params"))
    }

    fn member_out_path(&self, t: usize) -> PathBuf {
        self.dir.join(format!("member-{t:03}.out"))
    }

    /// Commit member `t`: its parameters, (for kept members) its frozen
    /// outputs, the updated ensemble sums, then — the commit point — the
    /// manifest. `ensemble` must already include the member when kept.
    pub fn record_member(
        &mut self,
        student: &dyn Model,
        outputs: Option<(&Matrix, &Matrix)>,
        record: MemberRecord,
        ensemble: &Ensemble,
    ) -> Result<(), RunError> {
        let t = record.member;
        debug_assert_eq!(t, self.members.len(), "members commit in order");
        checkpoint::save(student, &self.member_params_path(t))?;
        if let Some((proba, logits)) = outputs {
            checkpoint::save_matrices(&self.member_out_path(t), "member-output", &[proba, logits])?;
        }
        if let (Some(ps), Some(ls)) = (ensemble.proba_sum(), ensemble.logits_sum()) {
            checkpoint::save_matrices(&self.dir.join(SUMS_FILE), "ensemble-sums", &[ps, ls])?;
        }
        let kept = record.kept;
        self.alpha_total = ensemble.alpha_total();
        self.members.push(record);
        self.write_manifest()?;
        rdd_obs::emit_checkpoint(t, kept, &self.dir.to_string_lossy());
        Ok(())
    }

    /// Flip the manifest to `complete` (the run's last commit).
    pub fn mark_complete(&mut self) -> Result<(), RunError> {
        self.status = RunStatus::Complete;
        self.write_manifest()
    }

    /// Reload every committed member. Kept members come back with their
    /// frozen `(proba, logits)`; replaying them (in order) into a fresh
    /// [`Ensemble`] is verified bitwise against the stored running sums, so
    /// a corrupted or hand-edited directory fails loudly instead of
    /// resuming into silently different numerics.
    pub fn load_members(&self) -> Result<Vec<PersistedMember>, RunError> {
        let mut out = Vec::with_capacity(self.members.len());
        let mut check = Ensemble::new();
        for rec in &self.members {
            let outputs = if rec.kept {
                if !(rec.alpha.is_finite() && rec.alpha > 0.0) {
                    return Err(RunError::Corrupt(format!(
                        "member {} is kept but has non-positive alpha {}",
                        rec.member, rec.alpha
                    )));
                }
                let path = self.member_out_path(rec.member);
                let (_, mats) = checkpoint::load_matrices(&path)?;
                let [proba, logits] = <[Matrix; 2]>::try_from(mats).map_err(|mats| {
                    RunError::Corrupt(format!(
                        "{}: expected 2 matrices, found {}",
                        path.display(),
                        mats.len()
                    ))
                })?;
                for m in [&proba, &logits] {
                    if m.shape() != (self.dataset_n, self.dataset_classes) {
                        return Err(RunError::Corrupt(format!(
                            "{}: matrix shape {:?} does not match dataset ({} x {})",
                            path.display(),
                            m.shape(),
                            self.dataset_n,
                            self.dataset_classes
                        )));
                    }
                }
                check.push(proba.clone(), logits.clone(), rec.alpha);
                Some((proba, logits))
            } else {
                None
            };
            out.push(PersistedMember {
                record: rec.clone(),
                outputs,
            });
        }
        if !check.is_empty() {
            self.verify_sums(&check)?;
        }
        Ok(out)
    }

    /// Bitwise-compare a rebuilt ensemble's running sums against the stored
    /// `ensemble.sums` checkpoint.
    fn verify_sums(&self, rebuilt: &Ensemble) -> Result<(), RunError> {
        let path = self.dir.join(SUMS_FILE);
        let (_, mats) = checkpoint::load_matrices(&path)?;
        if mats.len() != 2 {
            return Err(RunError::Corrupt(format!(
                "{}: expected 2 matrices, found {}",
                path.display(),
                mats.len()
            )));
        }
        if self.alpha_total.to_bits() != rebuilt.alpha_total().to_bits() {
            return Err(RunError::Corrupt(format!(
                "manifest alpha_total {} does not match replayed members' {}",
                self.alpha_total,
                rebuilt.alpha_total()
            )));
        }
        let pairs = [
            (
                "proba_sum",
                &mats[0],
                rebuilt.proba_sum().expect("non-empty"),
            ),
            (
                "logits_sum",
                &mats[1],
                rebuilt.logits_sum().expect("non-empty"),
            ),
        ];
        for (name, stored, live) in pairs {
            let same = stored.shape() == live.shape()
                && stored
                    .as_slice()
                    .iter()
                    .zip(live.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                return Err(RunError::Corrupt(format!(
                    "{}: stored {name} is not bitwise-identical to the replayed members'",
                    path.display()
                )));
            }
        }
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), RunError> {
        let json = self.to_json();
        let mut text = String::new();
        json.write(&mut text);
        text.push('\n');
        checkpoint::atomic_write(&self.dir.join(MANIFEST_FILE), &text)?;
        Ok(())
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::from("rdd-run-manifest")),
            ("version".into(), Json::from(1.0f64)),
            (
                "status".into(),
                Json::from(match self.status {
                    RunStatus::Running => "running",
                    RunStatus::Complete => "complete",
                }),
            ),
            ("source".into(), Json::from(self.source.as_str())),
            (
                "dataset".into(),
                Json::Obj(vec![
                    ("name".into(), Json::from(self.dataset_name.as_str())),
                    ("n".into(), Json::from(self.dataset_n)),
                    ("num_classes".into(), Json::from(self.dataset_classes)),
                ]),
            ),
            (
                "rng".into(),
                Json::Obj(vec![
                    ("scheme".into(), Json::from("reseed-per-member")),
                    // u64 seeds don't fit JSON's f64 numbers exactly; store
                    // the decimal string.
                    ("seed".into(), Json::from(self.config.seed.to_string())),
                    ("next_member".into(), Json::from(self.members.len())),
                ]),
            ),
            ("config".into(), config_to_json(&self.config)),
            ("alpha_total".into(), Json::from(self.alpha_total)),
            (
                "members".into(),
                Json::Arr(self.members.iter().map(member_to_json).collect()),
            ),
        ])
    }
}

/// The dataset source string a run directory's manifest was created with —
/// what `rdd resume` feeds back into the dataset loader.
pub fn manifest_source(dir: &Path) -> Result<String, RunError> {
    Ok(RunState::load(dir)?.source().to_string())
}

// --- JSON (de)serialization of the config and member records ---
//
// f32 values widen exactly into JSON's f64 and the encoder prints shortest-
// roundtrip decimals, so every float survives a manifest round trip
// bitwise. NaN encodes as `null` (only `final_train_loss` can be NaN).

fn config_to_json(cfg: &RddConfig) -> Json {
    let a = cfg.ablation;
    let t = &cfg.train;
    Json::Obj(vec![
        ("num_base_models".into(), Json::from(cfg.num_base_models)),
        ("p".into(), Json::from(cfg.p)),
        ("beta".into(), Json::from(cfg.beta)),
        ("gamma_initial".into(), Json::from(cfg.gamma_initial)),
        ("gamma_epochs".into(), Json::from(cfg.gamma_epochs)),
        ("seed".into(), Json::from(cfg.seed.to_string())),
        (
            "distill".into(),
            Json::from(match cfg.distill {
                DistillTarget::Logits => "logits",
                DistillTarget::Probs => "probs",
                DistillTarget::SoftCe => "soft_ce",
            }),
        ),
        (
            "ablation".into(),
            Json::Obj(vec![
                ("use_l2".into(), Json::Bool(a.use_l2)),
                ("use_lreg".into(), Json::Bool(a.use_lreg)),
                (
                    "use_node_reliability".into(),
                    Json::Bool(a.use_node_reliability),
                ),
                (
                    "use_edge_reliability".into(),
                    Json::Bool(a.use_edge_reliability),
                ),
                (
                    "use_entropy_weights".into(),
                    Json::Bool(a.use_entropy_weights),
                ),
            ]),
        ),
        (
            "gcn".into(),
            Json::Obj(vec![
                ("hidden".into(), Json::from(cfg.gcn.hidden.clone())),
                ("dropout".into(), Json::from(cfg.gcn.dropout)),
                ("input_dropout".into(), Json::from(cfg.gcn.input_dropout)),
            ]),
        ),
        (
            "train".into(),
            Json::Obj(vec![
                ("lr".into(), Json::from(t.lr)),
                ("weight_decay".into(), Json::from(t.weight_decay)),
                ("epochs".into(), Json::from(t.epochs)),
                ("patience".into(), Json::from(t.patience)),
                ("min_epochs".into(), Json::from(t.min_epochs)),
                ("log_every".into(), Json::from(t.log_every)),
                (
                    "lr_schedule".into(),
                    match t.lr_schedule {
                        LrSchedule::Constant => {
                            Json::Obj(vec![("kind".into(), Json::from("constant"))])
                        }
                        LrSchedule::CosineRestarts { period } => Json::Obj(vec![
                            ("kind".into(), Json::from("cosine_restarts")),
                            ("period".into(), Json::from(period)),
                        ]),
                    },
                ),
                (
                    "divergence".into(),
                    Json::Obj(vec![
                        ("max_retries".into(), Json::from(t.divergence.max_retries)),
                        ("lr_backoff".into(), Json::from(t.divergence.lr_backoff)),
                    ]),
                ),
            ]),
        ),
    ])
}

fn config_from_json(j: &Json) -> Result<RddConfig, String> {
    let ablation = j.get("ablation").ok_or("missing \"ablation\"")?;
    let gcn = j.get("gcn").ok_or("missing \"gcn\"")?;
    let train = j.get("train").ok_or("missing \"train\"")?;
    let schedule = train.get("lr_schedule").ok_or("missing \"lr_schedule\"")?;
    let lr_schedule = match str_of(schedule, "kind")?.as_str() {
        "constant" => LrSchedule::Constant,
        "cosine_restarts" => LrSchedule::CosineRestarts {
            period: usize_of(schedule, "period")?,
        },
        other => return Err(format!("unknown lr_schedule kind {other:?}")),
    };
    let divergence = train.get("divergence").ok_or("missing \"divergence\"")?;
    let seed_str = str_of(j, "seed")?;
    let seed: u64 = seed_str
        .parse()
        .map_err(|_| format!("bad seed {seed_str:?}"))?;
    let hidden = match gcn.get("hidden") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_f64()
                    .filter(|x| x.fract() == 0.0 && *x >= 0.0)
                    .map(|x| x as usize)
                    .ok_or_else(|| "bad gcn hidden width".to_string())
            })
            .collect::<Result<Vec<usize>, String>>()?,
        _ => return Err("missing gcn \"hidden\" array".into()),
    };
    Ok(RddConfig {
        num_base_models: usize_of(j, "num_base_models")?,
        p: f32_of(j, "p")?,
        beta: f32_of(j, "beta")?,
        gamma_initial: f32_of(j, "gamma_initial")?,
        gamma_epochs: usize_of(j, "gamma_epochs")?,
        distill: match str_of(j, "distill")?.as_str() {
            "logits" => DistillTarget::Logits,
            "probs" => DistillTarget::Probs,
            "soft_ce" => DistillTarget::SoftCe,
            other => return Err(format!("unknown distill target {other:?}")),
        },
        gcn: GcnConfig {
            hidden,
            dropout: f32_of(gcn, "dropout")?,
            input_dropout: f32_of(gcn, "input_dropout")?,
        },
        train: TrainConfig {
            lr: f32_of(train, "lr")?,
            weight_decay: f32_of(train, "weight_decay")?,
            epochs: usize_of(train, "epochs")?,
            patience: usize_of(train, "patience")?,
            min_epochs: usize_of(train, "min_epochs")?,
            log_every: usize_of(train, "log_every")?,
            lr_schedule,
            divergence: DivergencePolicy {
                max_retries: usize_of(divergence, "max_retries")?,
                lr_backoff: f32_of(divergence, "lr_backoff")?,
            },
        },
        ablation: Ablation {
            use_l2: bool_of(ablation, "use_l2")?,
            use_lreg: bool_of(ablation, "use_lreg")?,
            use_node_reliability: bool_of(ablation, "use_node_reliability")?,
            use_edge_reliability: bool_of(ablation, "use_edge_reliability")?,
            use_entropy_weights: bool_of(ablation, "use_entropy_weights")?,
        },
        seed,
    })
}

fn member_to_json(rec: &MemberRecord) -> Json {
    let r = &rec.report;
    Json::Obj(vec![
        ("member".into(), Json::from(rec.member)),
        ("kept".into(), Json::Bool(rec.kept)),
        ("alpha".into(), Json::from(rec.alpha)),
        ("val_acc".into(), Json::from(rec.val_acc)),
        ("test_acc".into(), Json::from(rec.test_acc)),
        ("best_val_acc".into(), Json::from(r.best_val_acc)),
        ("best_epoch".into(), Json::from(r.best_epoch)),
        ("epochs_run".into(), Json::from(r.epochs_run)),
        // NaN (a run that never completed an epoch) encodes as null.
        ("final_train_loss".into(), Json::from(r.final_train_loss)),
        ("rollbacks".into(), Json::from(r.rollbacks)),
        ("diverged".into(), Json::Bool(r.diverged)),
        ("wall_time_s".into(), Json::from(r.wall_time_s)),
    ])
}

fn member_from_json(j: &Json) -> Result<MemberRecord, String> {
    // Nullable floats: `final_train_loss` null ⇒ NaN (no finished epoch),
    // `best_val_acc` null ⇒ -inf (no validated epoch).
    let final_train_loss = match j.get("final_train_loss") {
        Some(Json::Null) => f32::NAN,
        _ => f32_of(j, "final_train_loss")?,
    };
    let best_val_acc = match j.get("best_val_acc") {
        Some(Json::Null) => f32::NEG_INFINITY,
        _ => f32_of(j, "best_val_acc")?,
    };
    Ok(MemberRecord {
        member: usize_of(j, "member")?,
        kept: bool_of(j, "kept")?,
        alpha: f32_of(j, "alpha")?,
        val_acc: f32_of(j, "val_acc")?,
        test_acc: f32_of(j, "test_acc")?,
        report: TrainReport {
            best_val_acc,
            best_epoch: usize_of(j, "best_epoch")?,
            epochs_run: usize_of(j, "epochs_run")?,
            final_train_loss,
            wall_time_s: num_of(j, "wall_time_s")?,
            rollbacks: usize_of(j, "rollbacks")?,
            diverged: bool_of(j, "diverged")?,
        },
    })
}

// --- small typed field accessors over Json ---

fn str_of(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn num_of(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn f32_of(j: &Json, key: &str) -> Result<f32, String> {
    num_of(j, key).map(|v| v as f32)
}

fn usize_of(j: &Json, key: &str) -> Result<usize, String> {
    let v = num_of(j, key)?;
    if v.fract() != 0.0 || v < 0.0 {
        return Err(format!("field {key:?} must be a non-negative integer"));
    }
    Ok(v as usize)
}

fn bool_of(j: &Json, key: &str) -> Result<bool, String> {
    match j.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing boolean field {key:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdd_graph::SynthConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rdd_run_{tag}_{}", std::process::id()))
    }

    #[test]
    fn config_survives_a_manifest_roundtrip() {
        let mut cfg = RddConfig::fast();
        cfg.seed = u64::MAX - 12345; // exercises the string encoding
        cfg.train.lr_schedule = LrSchedule::CosineRestarts { period: 7 };
        cfg.train.divergence = DivergencePolicy {
            max_retries: 5,
            lr_backoff: 0.25,
        };
        cfg.distill = DistillTarget::SoftCe;
        cfg.ablation = Ablation::without_edge_reliability();
        cfg.p = 0.3333333;
        let json = config_to_json(&cfg);
        let mut text = String::new();
        json.write(&mut text);
        let parsed = rdd_obs::parse(&text).expect("manifest json parses");
        let back = config_from_json(&parsed).expect("config decodes");
        assert_eq!(back, cfg);
        assert_eq!(back.p.to_bits(), cfg.p.to_bits());
        assert_eq!(back.seed, cfg.seed);
    }

    #[test]
    fn member_record_roundtrips_including_nan_loss() {
        let rec = MemberRecord {
            member: 2,
            kept: false,
            alpha: 3.5,
            val_acc: 0.5,
            test_acc: 0.25,
            report: TrainReport {
                best_val_acc: 0.75,
                best_epoch: 4,
                epochs_run: 9,
                final_train_loss: f32::NAN,
                wall_time_s: 1.5,
                rollbacks: 3,
                diverged: true,
            },
        };
        let mut text = String::new();
        member_to_json(&rec).write(&mut text);
        let back = member_from_json(&rdd_obs::parse(&text).unwrap()).unwrap();
        assert_eq!(back.member, 2);
        assert!(!back.kept);
        assert!(back.report.diverged);
        assert_eq!(back.report.rollbacks, 3);
        assert!(back.report.final_train_loss.is_nan());
        assert_eq!(back.alpha.to_bits(), rec.alpha.to_bits());
    }

    #[test]
    fn create_load_and_dataset_binding() {
        let data = SynthConfig::tiny().generate();
        let dir = tmp_dir("create_load");
        let _ = fs::remove_dir_all(&dir);
        let cfg = RddConfig::fast();
        let state = RunState::create(&dir, "tiny", &cfg, &data).expect("create");
        assert_eq!(state.next_member(), 0);
        assert!(!state.is_complete());

        // A second create on the same directory must refuse.
        let err = RunState::create(&dir, "tiny", &cfg, &data).unwrap_err();
        assert!(matches!(err, RunError::Unsupported(_)), "got {err}");

        let loaded = RunState::load(&dir).expect("load");
        assert_eq!(loaded.source(), "tiny");
        assert_eq!(loaded.config(), &cfg);
        loaded.check_dataset(&data).expect("binding holds");

        // A dataset with a different shape must be rejected.
        let mut other = data.clone();
        other.num_classes += 1;
        assert!(matches!(
            loaded.check_dataset(&other),
            Err(RunError::Mismatch(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_reported_not_panicked() {
        let dir = tmp_dir("corrupt_manifest");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(MANIFEST_FILE), "{\"format\":\"something-else\"}").unwrap();
        let err = RunState::load(&dir).unwrap_err();
        assert!(matches!(err, RunError::Corrupt(_)), "got {err}");
        fs::write(dir.join(MANIFEST_FILE), "not json at all").unwrap();
        let err = RunState::load(&dir).unwrap_err();
        assert!(matches!(err, RunError::Corrupt(_)), "got {err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
