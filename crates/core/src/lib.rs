#![warn(missing_docs)]
//! # rdd-core
//!
//! Reliable Data Distillation on Graph Convolutional Network — a from-
//! scratch Rust reproduction of Zhang et al., SIGMOD 2020.
//!
//! RDD improves semi-supervised GCN training by distilling only *reliable*
//! teacher knowledge into each student:
//!
//! * [`reliability`] — node reliability (Algorithm 1) and edge reliability
//!   (Algorithm 2);
//! * [`ensemble`] — the PageRank-entropy weighted teacher ensemble
//!   (Eqs. 12–13);
//! * [`rdd`] — the self-boosting training loop (Algorithm 3) with the
//!   three-term objective `L = L1 + γ·L2 + β·Lreg` (Eq. 10) and the
//!   Table 8 ablation switches;
//! * [`run`] — crash-safe run directories: per-member checkpoints with
//!   atomic commits, so [`RddTrainer::resume`] restarts an interrupted
//!   cascade at the next member boundary with bitwise-identical results;
//! * [`distill`] — post-hoc distillation of the frozen ensemble into a
//!   graph-free MLP student with reliability-weighted soft targets.
//!
//! ```
//! use rdd_core::{RddConfig, RddTrainer};
//! use rdd_graph::SynthConfig;
//!
//! let dataset = SynthConfig::tiny().generate();
//! let mut config = RddConfig::fast();
//! config.num_base_models = 2;
//! config.train.epochs = 20;
//! config.validate().expect("still a sane config");
//! let outcome = RddTrainer::new(config).run(&dataset);
//! assert!(outcome.ensemble_test_acc > 0.3);
//! ```

pub mod distill;
pub mod ensemble;
pub mod rdd;
pub mod reliability;
pub mod run;

pub use distill::{distill_mlp, distill_run, DistillConfig, DistillOutcome};
pub use ensemble::{model_weight, uniform_weight, Ensemble, EnsembleMember};
pub use rdd::{
    cosine_gamma, Ablation, BaseModelRecord, DistillTarget, RddConfig, RddConfigBuilder,
    RddOutcome, RddTrainer,
};
pub use reliability::{
    all_nodes_reliable, compute_reliability, ReliabilitySets, ReliabilityWorkspace,
};
pub use run::{manifest_source, MemberRecord, PersistedMember, RunError, RunState};
