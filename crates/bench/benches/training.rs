//! Training-loop benches: the per-epoch cost of a plain GCN step vs an RDD
//! step (the input to Table 9's "average time per model" ratio), and
//! eval-mode prediction.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use rdd_core::compute_reliability;
use rdd_graph::SynthConfig;
use rdd_models::{Gcn, GcnConfig, GraphContext, Model, PredictorExt};
use rdd_tensor::{seeded_rng, Tape};

fn bench_epoch(c: &mut Criterion) {
    let data = SynthConfig::cora_sim().generate();
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(1);
    let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    let labels = Rc::new(data.labels.clone());
    let train_idx = Rc::new(data.train_idx.clone());

    let mut g = c.benchmark_group("epoch");
    g.sample_size(30);
    g.bench_function("gcn_forward_backward(cora)", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let logits = model.forward(&mut tape, &ctx, true, &mut rng);
            let logp = tape.log_softmax(logits);
            let loss = tape.nll_masked(logp, Rc::clone(&labels), Rc::clone(&train_idx));
            std::hint::black_box(tape.backward(loss, model.params().len()));
        });
    });

    // The RDD step: same forward/backward plus the per-epoch reliability
    // update and the two extra loss terms.
    let teacher_logits = model.predictor(&ctx).logits();
    let teacher_proba = teacher_logits.softmax_rows();
    let teacher_logits = Rc::new(teacher_logits);
    let mut is_labeled = vec![false; data.n()];
    for &i in &data.train_idx {
        is_labeled[i] = true;
    }
    g.bench_function("rdd_forward_backward(cora)", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let logits = model.forward(&mut tape, &ctx, true, &mut rng);
            let student_proba = tape.value(logits).softmax_rows();
            let sets = compute_reliability(
                &teacher_proba,
                &student_proba,
                &data.labels,
                &is_labeled,
                0.4,
                &data.graph,
            );
            let logp = tape.log_softmax(logits);
            let ce = tape.nll_masked(logp, Rc::clone(&labels), Rc::clone(&train_idx));
            let l2 = tape.mse_rows(logits, Rc::clone(&teacher_logits), Rc::new(sets.distill));
            let probs = tape.softmax(logits);
            let lreg = tape.edge_reg(probs, Rc::new(sets.edges));
            let loss = tape.weighted_sum(&[(ce, 1.0), (l2, 1.0), (lreg, 1.0)]);
            std::hint::black_box(tape.backward(loss, model.params().len()));
        });
    });
    g.finish();
}

fn bench_gat_epoch(c: &mut Criterion) {
    use rdd_models::{Gat, GatConfig};
    let data = SynthConfig::cora_sim().generate();
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(5);
    let gat = Gat::new(&ctx, GatConfig::default(), &mut rng);
    let labels = Rc::new(data.labels.clone());
    let train_idx = Rc::new(data.train_idx.clone());
    let mut g = c.benchmark_group("epoch");
    g.sample_size(10);
    g.bench_function("gat_forward_backward(cora)", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let logits = gat.forward(&mut tape, &ctx, true, &mut rng);
            let logp = tape.log_softmax(logits);
            let loss = tape.nll_masked(logp, Rc::clone(&labels), Rc::clone(&train_idx));
            std::hint::black_box(tape.backward(loss, gat.params().len()));
        });
    });
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = SynthConfig::cora_sim().generate();
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(2);
    let model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    c.bench_function("predict_logits(cora)", |b| {
        b.iter(|| std::hint::black_box(model.predictor(&ctx).logits()));
    });
}

criterion_group!(benches, bench_epoch, bench_gat_epoch, bench_predict);
criterion_main!(benches);
