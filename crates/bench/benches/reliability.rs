//! Reliability-update benches — Algorithm 1/2 run every training epoch, so
//! their cost matters. Includes the two representation ablations from
//! DESIGN.md: top-p selection via `select_nth_unstable` vs a full sort, and
//! reliable-set lookup via bitmap vs sorted index list.

use criterion::{criterion_group, criterion_main, Criterion};
use rdd_core::compute_reliability;
use rdd_graph::SynthConfig;
use rdd_tensor::{seeded_rng, uniform};

fn bench_reliability_update(c: &mut Criterion) {
    let data = SynthConfig::cora_sim().generate();
    let mut rng = seeded_rng(1);
    let teacher = uniform(data.n(), data.num_classes, 3.0, &mut rng).softmax_rows();
    let student = uniform(data.n(), data.num_classes, 3.0, &mut rng).softmax_rows();
    let mut is_labeled = vec![false; data.n()];
    for &i in &data.train_idx {
        is_labeled[i] = true;
    }
    c.bench_function("compute_reliability(cora)", |b| {
        b.iter(|| {
            std::hint::black_box(compute_reliability(
                &teacher,
                &student,
                &data.labels,
                &is_labeled,
                0.4,
                &data.graph,
            ))
        });
    });
}

fn bench_topp_selection(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let entropies: Vec<f32> = uniform(1, 19717, 1.0, &mut rng).as_slice().to_vec();
    let k = (entropies.len() as f32 * 0.4) as usize;

    let mut g = c.benchmark_group("top_p_threshold");
    // Ablation A: partial selection (what `rdd-core` uses).
    g.bench_function("select_nth_unstable", |b| {
        b.iter(|| {
            let mut v = entropies.clone();
            let (_, nth, _) = v.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
            std::hint::black_box(*nth)
        });
    });
    // Ablation B: full sort (what a naive implementation of Algorithm 1's
    // "sort ascending" would do).
    g.bench_function("full_sort", |b| {
        b.iter(|| {
            let mut v = entropies.clone();
            v.sort_unstable_by(|a, b| a.total_cmp(b));
            std::hint::black_box(v[k - 1])
        });
    });
    g.finish();
}

fn bench_reliable_set_repr(c: &mut Criterion) {
    // Ablation: edge filtering against a bitmap vs a sorted index list.
    let data = SynthConfig::pubmed_sim().generate();
    let n = data.n();
    let mut rng = seeded_rng(3);
    let reliable_bitmap: Vec<bool> = uniform(1, n, 1.0, &mut rng)
        .as_slice()
        .iter()
        .map(|&x| x > 0.0)
        .collect();
    let reliable_sorted: Vec<u32> = (0..n as u32)
        .filter(|&i| reliable_bitmap[i as usize])
        .collect();
    let edges = data.graph.edges();

    let mut g = c.benchmark_group("reliable_edge_filter");
    g.bench_function("bitmap", |b| {
        b.iter(|| {
            let count = edges
                .iter()
                .filter(|&&(x, y)| reliable_bitmap[x as usize] && reliable_bitmap[y as usize])
                .count();
            std::hint::black_box(count)
        });
    });
    g.bench_function("binary_search_index_list", |b| {
        b.iter(|| {
            let count = edges
                .iter()
                .filter(|&&(x, y)| {
                    reliable_sorted.binary_search(&x).is_ok()
                        && reliable_sorted.binary_search(&y).is_ok()
                })
                .count();
            std::hint::black_box(count)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_reliability_update,
    bench_topp_selection,
    bench_reliable_set_repr
);
criterion_main!(benches);
