//! Kernel microbenches: the dense/sparse primitives every training epoch is
//! made of, plus the SpMM-vs-dense ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdd_graph::SynthConfig;
use rdd_tensor::{seeded_rng, uniform, CsrMatrix, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    let mut rng = seeded_rng(1);
    for &(m, k, n) in &[
        (512usize, 64usize, 64usize),
        (2708, 1433, 16),
        (2708, 16, 7),
    ] {
        let a = uniform(m, k, 1.0, &mut rng);
        let b = uniform(k, n, 1.0, &mut rng);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(),
            |bch, _| {
                bch.iter(|| std::hint::black_box(a.matmul(&b)));
            },
        );
    }
    g.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let data = SynthConfig::cora_sim().generate();
    let a_hat = data.graph.normalized_adjacency();
    let x = data.features.clone();
    let mut rng = seeded_rng(2);
    let h = uniform(data.n(), 16, 1.0, &mut rng);
    let w = uniform(data.num_features(), 16, 1.0, &mut rng);

    let mut g = c.benchmark_group("spmm");
    g.bench_function("a_hat@h(cora,16)", |b| {
        b.iter(|| std::hint::black_box(a_hat.spmm(&h)));
    });
    g.bench_function("features@w(cora,16)", |b| {
        b.iter(|| std::hint::black_box(x.spmm(&w)));
    });
    g.bench_function("features_t@h(backward)", |b| {
        b.iter(|| std::hint::black_box(x.spmm_t(&h)));
    });
    // Ablation: the dense equivalent of the sparse feature product — the
    // reason layer 1 takes CSR input.
    let x_dense = x.to_dense();
    g.sample_size(10);
    g.bench_function("dense_features@w(ablation)", |b| {
        b.iter(|| std::hint::black_box(x_dense.matmul(&w)));
    });
    g.finish();
}

fn bench_backprop(c: &mut Criterion) {
    let mut rng = seeded_rng(4);
    let mut g = c.benchmark_group("backprop");
    g.sample_size(20);
    // Acceptance shape for the blocked/parallel backprop kernels.
    let a = uniform(2048, 512, 1.0, &mut rng);
    let d = uniform(2048, 512, 1.0, &mut rng);
    g.bench_function("matmul_at_b(2048x512x512)", |b| {
        b.iter(|| std::hint::black_box(a.matmul_at_b(&d)));
    });
    let bt = uniform(512, 512, 1.0, &mut rng);
    g.bench_function("matmul_a_bt(2048x512x512)", |b| {
        b.iter(|| std::hint::black_box(a.matmul_a_bt(&bt)));
    });
    g.bench_function("transpose(2048x512)", |b| {
        b.iter(|| std::hint::black_box(a.transpose()));
    });
    // ~100k-entry propagation operator (pubmed-sim Â): the sparse backprop
    // scatter plus the PageRank-weighting vector kernels.
    let data = SynthConfig::pubmed_sim().generate();
    let a_hat = data.graph.normalized_adjacency();
    let h = uniform(data.n(), 16, 1.0, &mut rng);
    g.bench_function("spmm_t(pubmed,16)", |b| {
        b.iter(|| std::hint::black_box(a_hat.spmm_t(&h)));
    });
    let v = vec![1.0 / data.n() as f32; data.n()];
    g.bench_function("spmv_t(pubmed)", |b| {
        b.iter(|| std::hint::black_box(a_hat.spmv_t(&v)));
    });
    g.bench_function("prune(pubmed)", |b| {
        b.iter(|| std::hint::black_box(a_hat.prune(1e-3)));
    });
    g.finish();
}

fn bench_graph_ops(c: &mut Criterion) {
    let data = SynthConfig::cora_sim().generate();
    let mut g = c.benchmark_group("graph");
    g.bench_function("pagerank(cora,100it)", |b| {
        b.iter(|| std::hint::black_box(data.graph.pagerank(0.85, 100, 1e-9)));
    });
    g.bench_function("normalized_adjacency(cora)", |b| {
        b.iter(|| std::hint::black_box(data.graph.normalized_adjacency()));
    });
    g.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let data = SynthConfig::cora_sim().generate();
    let triplets: Vec<(usize, usize, f32)> = data.features.iter().collect();
    let (rows, cols) = data.features.shape();
    c.bench_function("csr_from_triplets(cora features)", |b| {
        b.iter(|| std::hint::black_box(CsrMatrix::from_triplets(rows, cols, &triplets)));
    });
}

fn bench_softmax_entropy(c: &mut Criterion) {
    let mut rng = seeded_rng(3);
    let logits = uniform(2708, 7, 3.0, &mut rng);
    let proba: Matrix = logits.softmax_rows();
    let mut g = c.benchmark_group("rowops");
    g.bench_function("softmax_rows(2708x7)", |b| {
        b.iter(|| std::hint::black_box(logits.softmax_rows()));
    });
    g.bench_function("row_entropy(2708x7)", |b| {
        b.iter(|| std::hint::black_box(proba.row_entropy()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_spmm,
    bench_backprop,
    bench_graph_ops,
    bench_csr_build,
    bench_softmax_entropy
);
criterion_main!(benches);
