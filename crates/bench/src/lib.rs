//! # rdd-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§5), plus Criterion microbenches over the kernels the
//! experiments stand on. This library holds the shared plumbing — preset
//! lookup, per-dataset model/training configs, repeated-trial statistics
//! and fixed-width table printing.

use rdd_core::RddConfig;
use rdd_graph::{Dataset, SynthConfig};
use rdd_models::{GcnConfig, TrainConfig};

/// Look up a synthetic preset by short or full name.
pub fn preset(name: &str) -> SynthConfig {
    match name {
        "cora" | "cora-sim" => SynthConfig::cora_sim(),
        "citeseer" | "citeseer-sim" => SynthConfig::citeseer_sim(),
        "pubmed" | "pubmed-sim" => SynthConfig::pubmed_sim(),
        "nell" | "nell-sim" => SynthConfig::nell_sim(),
        "nell-full" | "nell-sim-full" => SynthConfig::nell_sim_full(),
        "tiny" => SynthConfig::tiny(),
        other => panic!("unknown dataset preset {other}"),
    }
}

/// The base-model architecture + optimizer settings the paper uses on a
/// given dataset (hidden 16 / dropout 0.5 on citation networks, hidden 100 /
/// dropout 0.2 / L2 1e-5 on NELL).
pub fn model_configs(dataset_name: &str) -> (GcnConfig, TrainConfig) {
    if dataset_name.starts_with("nell") {
        (GcnConfig::nell(), TrainConfig::nell())
    } else {
        (GcnConfig::citation(), TrainConfig::citation())
    }
}

/// The tuned RDD configuration for a dataset (see
/// [`RddConfig::for_dataset`]).
pub fn rdd_config(dataset_name: &str) -> RddConfig {
    RddConfig::for_dataset(dataset_name)
}

/// Number of repeated trials: the paper averages 10 runs; the harness
/// defaults to 3 for CPU budget and honors `RDD_TRIALS`.
pub fn num_trials() -> usize {
    std::env::var("RDD_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// Generate `trials` variants of a preset, one per seed (both the graph and
/// the split resample, matching the paper's repeated-runs protocol).
pub fn trial_datasets(cfg: &SynthConfig, trials: usize) -> Vec<Dataset> {
    (0..trials as u64)
        .map(|s| cfg.generate_with_seed(cfg.seed.wrapping_add(s * 7919)))
        .collect()
}

/// Mean and (population) standard deviation.
pub fn mean_std(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f32>() / xs.len() as f32;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / xs.len() as f32;
    (mean, var.sqrt())
}

/// Format an accuracy (fraction) as `xx.x`.
pub fn pct(x: f32) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Format `mean ± std` in percent.
pub fn pct_pm(mean: f32, std: f32) -> String {
    format!("{:.1}±{:.1}", 100.0 * mean, 100.0 * std)
}

/// A minimal fixed-width table printer (first column left-aligned label,
/// rest right-aligned cells).
pub struct TablePrinter {
    label_width: usize,
    cell_width: usize,
}

impl TablePrinter {
    pub fn new(label_width: usize, cell_width: usize) -> Self {
        Self {
            label_width,
            cell_width,
        }
    }

    /// Print a header row followed by a rule.
    pub fn header(&self, label: &str, cells: &[&str]) {
        self.row(label, cells);
        let width = self.label_width + cells.len() * (self.cell_width + 1);
        println!("{}", "-".repeat(width));
    }

    /// Print one row.
    pub fn row(&self, label: &str, cells: &[&str]) {
        let mut line = format!("{:<w$}", label, w = self.label_width);
        for c in cells {
            line.push(' ');
            line.push_str(&format!("{:>w$}", c, w = self.cell_width));
        }
        println!("{line}");
    }
}

/// Paper-reported numbers quoted in the harness output so every table can
/// print "paper vs measured" side by side.
pub mod paper {
    /// Table 3 (ensemble comparison), `[Cora, Citeseer, Pubmed, NELL]`.
    pub const T3_GCN: [f32; 4] = [81.8, 70.8, 79.3, 83.0];
    pub const T3_RDD_SINGLE: [f32; 4] = [84.8, 73.6, 80.7, 85.2];
    pub const T3_BAGGING: [f32; 4] = [84.2, 72.6, 80.1, 85.1];
    pub const T3_BANS: [f32; 4] = [84.5, 72.1, 79.8, 85.4];
    pub const T3_RDD_ENSEMBLE: [f32; 4] = [86.1, 74.2, 81.5, 86.3];

    /// Table 4 (single-model comparison on citation networks): values the
    /// paper quotes from the original publications, `[Cora, Citeseer,
    /// Pubmed]`.
    pub const T4_LITERATURE: &[(&str, [f32; 3])] = &[
        ("LP", [68.0, 45.3, 63.0]),
        ("Planetoid", [75.7, 64.7, 79.5]),
        ("LGCN", [83.3, 73.0, 79.5]),
        ("GPNN", [81.8, 69.7, 79.3]),
        ("NGCN", [83.0, 72.2, 79.5]),
        ("DGCN", [83.5, 72.6, 80.0]),
        ("APPNP", [83.3, 71.8, 80.1]),
        ("GAT", [83.0, 72.5, 79.0]),
        ("GCN", [81.8, 70.8, 79.3]),
    ];
    pub const T4_RDD_SINGLE: [f32; 3] = [84.8, 73.6, 80.7];

    /// Table 5 (deep GCN comparison), `[Cora, Citeseer, Pubmed, NELL]`.
    pub const T5_GCN: [f32; 4] = [81.8, 70.8, 79.3, 83.0];
    pub const T5_JKNET: [f32; 4] = [81.8, 70.7, 78.8, 84.1];
    pub const T5_RESGCN: [f32; 4] = [82.2, 70.8, 78.3, 82.1];
    pub const T5_DENSEGCN: [f32; 4] = [82.1, 70.9, 79.1, 83.4];
    pub const T5_RDD_SINGLE: [f32; 4] = [84.8, 73.6, 80.7, 85.2];

    /// Table 6 (ensemble analysis on Cora): (method, average, ensemble, gain).
    pub const T6: &[(&str, f32, f32, f32)] = &[
        ("Bagging", 81.8, 84.2, 2.4),
        ("BANs", 83.7, 84.5, 0.8),
        ("RDD", 84.3, 86.1, 1.8),
    ];

    /// Table 8 ablation accuracies, `[Cora, Citeseer, Pubmed]`.
    pub const T8: &[(&str, [f32; 3])] = &[
        ("No L2", [84.4, 73.5, 80.2]),
        ("No Lreg", [85.2, 73.6, 80.9]),
        ("WNR", [84.9, 73.3, 80.4]),
        ("WER", [85.5, 73.4, 80.8]),
        ("WKR", [84.8, 73.1, 79.8]),
        ("WEW", [85.3, 73.7, 80.9]),
        ("RDD", [86.1, 74.2, 81.5]),
    ];

    /// Table 9 (training time on Cora):
    /// (method, avg time per model s, #base models, total s).
    pub const T9: &[(&str, f32, usize, f32)] = &[
        ("Bagging", 2.032, 4, 8.128),
        ("BANs", 2.652, 3, 7.956),
        ("RDD(Ensemble)", 4.158, 2, 8.316),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_lookup_roundtrip() {
        for name in ["cora", "citeseer", "pubmed", "nell", "tiny"] {
            let cfg = preset(name);
            assert!(cfg.name.starts_with(name) || name == "nell");
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset preset")]
    fn preset_unknown_panics() {
        preset("imaginary");
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!((s - 1.0).abs() < 1e-6);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn trial_datasets_vary() {
        let cfg = preset("tiny");
        let ds = trial_datasets(&cfg, 2);
        assert_eq!(ds.len(), 2);
        assert_ne!(ds[0].train_idx, ds[1].train_idx);
    }

    #[test]
    fn model_configs_match_paper() {
        let (g, t) = model_configs("cora-sim");
        assert_eq!(g.hidden, vec![16]);
        assert!((t.weight_decay - 5e-4).abs() < 1e-9);
        let (g, t) = model_configs("nell-sim");
        assert_eq!(g.hidden, vec![100]);
        assert!((t.weight_decay - 1e-5).abs() < 1e-9);
    }
}
