//! Figure 3 — "Student learning for both Knowledge Distillation and
//! Reliable Data Distillation" — turned into a measurable experiment.
//!
//! The paper's figure argues that a classical KD student inherits the
//! teacher's mistakes (it mimics *all* outputs), while an RDD student only
//! learns reliable knowledge and keeps its chance to correct unreliable
//! nodes. This binary quantifies the *error-inheritance rate*: among test
//! nodes the teacher gets wrong, how often does each student repeat the
//! teacher's exact wrong label?

use std::rc::Rc;

use rdd_core::compute_reliability;
use rdd_models::{train, Gcn, GraphContext, PredictorExt};
use rdd_tensor::{seeded_rng, Tape, Var};

fn main() {
    let cfg = rdd_bench::preset("cora");
    let data = cfg.generate();
    let (gcn_cfg, train_cfg) = rdd_bench::model_configs(cfg.name);
    let ctx = GraphContext::new(&data);

    // Teacher.
    let mut rng = seeded_rng(1);
    let mut teacher = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
    train(&mut teacher, &ctx, &data, &train_cfg, &mut rng, None);
    let teacher_logits = Rc::new(teacher.predictor(&ctx).logits());
    let teacher_proba = teacher_logits.softmax_rows();
    let teacher_pred = teacher_proba.argmax_rows();
    let teacher_wrong: Vec<usize> = data
        .test_idx
        .iter()
        .copied()
        .filter(|&i| teacher_pred[i] != data.labels[i])
        .collect();
    println!(
        "teacher: {:.1}% test accuracy, {} wrong test nodes",
        100.0 * data.test_accuracy(&teacher_pred),
        teacher_wrong.len()
    );

    let inheritance = |student_pred: &[usize]| -> f32 {
        if teacher_wrong.is_empty() {
            return 0.0;
        }
        teacher_wrong
            .iter()
            .filter(|&&i| student_pred[i] == teacher_pred[i])
            .count() as f32
            / teacher_wrong.len() as f32
    };

    let mut is_labeled = vec![false; data.n()];
    for &i in &data.train_idx {
        is_labeled[i] = true;
    }
    let all_nodes: Rc<Vec<usize>> = Rc::new((0..data.n()).collect());

    // 1. Independent student (no teacher) — the diversity baseline.
    let mut rng = seeded_rng(2);
    let mut independent = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
    train(&mut independent, &ctx, &data, &train_cfg, &mut rng, None);
    let ind_pred = independent.predictor(&ctx).predict();

    // 2. Classical KD student: mimics ALL teacher outputs.
    let mut rng = seeded_rng(2);
    let mut kd_student = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
    {
        let t = Rc::clone(&teacher_logits);
        let nodes = Rc::clone(&all_nodes);
        let mut hook = move |tape: &mut Tape, logits: Var, _e: usize| {
            let l = tape.mse_rows(logits, Rc::clone(&t), Rc::clone(&nodes));
            vec![(l, 1.0f32)]
        };
        train(
            &mut kd_student,
            &ctx,
            &data,
            &train_cfg,
            &mut rng,
            Some(&mut hook),
        );
    }
    let kd_pred = kd_student.predictor(&ctx).predict();

    // 3. RDD student: per-epoch reliability filtering (Algorithm 1).
    let mut rng = seeded_rng(2);
    let mut rdd_student = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
    {
        let tp = teacher_proba.clone();
        let tl = Rc::new(teacher_proba.clone());
        let labels = data.labels.clone();
        let graph = &data.graph;
        let is_labeled = &is_labeled;
        let mut hook = move |tape: &mut Tape, logits: Var, epoch: usize| {
            let student_proba = tape.value(logits).softmax_rows();
            let sets = compute_reliability(&tp, &student_proba, &labels, is_labeled, 0.4, graph);
            let gamma = rdd_core::cosine_gamma(3.0, epoch, 150);
            if sets.distill.is_empty() || gamma <= 0.0 {
                return vec![];
            }
            let probs = tape.softmax(logits);
            let l = tape.mse_rows(probs, Rc::clone(&tl), Rc::new(sets.distill));
            vec![(l, gamma)]
        };
        train(
            &mut rdd_student,
            &ctx,
            &data,
            &train_cfg,
            &mut rng,
            Some(&mut hook),
        );
    }
    let rdd_pred = rdd_student.predictor(&ctx).predict();

    println!();
    println!(
        "{:<22} {:>9} {:>22}",
        "student", "test acc", "error inheritance"
    );
    println!("{}", "-".repeat(55));
    for (name, pred) in [
        ("independent (no KD)", &ind_pred),
        ("classical KD", &kd_pred),
        ("RDD (reliable only)", &rdd_pred),
    ] {
        println!(
            "{name:<22} {:>8.1}% {:>21.1}%",
            100.0 * data.test_accuracy(pred),
            100.0 * inheritance(pred)
        );
    }
    println!();
    println!("expected shape (paper Figure 3): classical KD inherits the teacher's");
    println!("mistakes at the highest rate; RDD stays closer to the independent");
    println!("student on teacher-wrong nodes while gaining accuracy overall.");
}
