//! Extension experiment (paper §5.3): "our method is not limited to the
//! base model we use, so the margin can be further improved if we use a
//! more powerful base model like GAT."
//!
//! Measures, on cora-sim: single GCN, single GAT, RDD over GCN bases, and
//! RDD over GAT bases.

use rdd_bench::{mean_std, model_configs, num_trials, pct_pm, preset, rdd_config};
use rdd_core::RddTrainer;
use rdd_models::{train, Gat, GatConfig, Gcn, GraphContext, PredictorExt};
use rdd_tensor::seeded_rng;

fn main() {
    let cfg = preset("cora");
    let (gcn_cfg, train_cfg) = model_configs(cfg.name);
    let gat_cfg = GatConfig::default();
    let trials = num_trials();

    let mut rows: Vec<(&str, Vec<f32>)> = vec![
        ("GCN (single)", Vec::new()),
        ("GAT (single)", Vec::new()),
        ("RDD(GCN) ensemble", Vec::new()),
        ("RDD(GAT) ensemble", Vec::new()),
    ];

    let data = cfg.generate();
    let ctx = GraphContext::new(&data);
    for t in 0..trials as u64 {
        let mut rng = seeded_rng(t);
        let mut gcn = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
        train(&mut gcn, &ctx, &data, &train_cfg, &mut rng, None);
        rows[0]
            .1
            .push(data.test_accuracy(&gcn.predictor(&ctx).predict()));

        let mut rng = seeded_rng(t);
        let mut gat = Gat::new(&ctx, gat_cfg.clone(), &mut rng);
        train(&mut gat, &ctx, &data, &train_cfg, &mut rng, None);
        rows[1]
            .1
            .push(data.test_accuracy(&gat.predictor(&ctx).predict()));

        let mut rdd_cfg = rdd_config(cfg.name);
        rdd_cfg.seed = t;
        rows[2].1.push(
            RddTrainer::new(rdd_cfg.clone())
                .run(&data)
                .ensemble_test_acc,
        );

        let gat_cfg2 = gat_cfg.clone();
        rows[3].1.push(
            RddTrainer::new(rdd_cfg)
                .with_base_model(move |ctx, rng| Box::new(Gat::new(ctx, gat_cfg2.clone(), rng)))
                .run(&data)
                .ensemble_test_acc,
        );
        eprintln!("[gat_extension] finished trial {t}");
    }

    println!("GAT extension on cora-sim ({trials} trials):");
    for (label, accs) in &rows {
        let (m, s) = mean_std(accs);
        println!("  {label:<20} {}", pct_pm(m, s));
    }
}
