//! Diagnostic: sweep RDD loss configurations on the synthetic presets.
//!
//! Results render as a table and are emitted as structured `sweep` telemetry
//! events (captured by `RDD_TRACE=<path>`, alongside the per-epoch records
//! the trainer itself emits).

use rdd_core::{DistillTarget, RddConfig, RddTrainer};
use rdd_graph::SynthConfig;
use rdd_obs::{render_table, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (data, base): (_, fn(f32) -> RddConfig) = match args.first().map(String::as_str) {
        Some("citeseer") => (SynthConfig::citeseer_sim().generate(), RddConfig::citation),
        Some("pubmed") => (SynthConfig::pubmed_sim().generate(), RddConfig::citation),
        Some("nell") => (SynthConfig::nell_sim().generate(), |g| {
            let mut c = RddConfig::nell();
            c.gamma_initial = g;
            c
        }),
        _ => (SynthConfig::cora_sim().generate(), RddConfig::citation),
    };
    let mut rows = Vec::new();
    for gamma in [0.3f32, 1.0, 3.0] {
        for beta in [0.0f32, 1.0, 10.0] {
            let mut cfg = base(gamma);
            cfg.distill = DistillTarget::Probs;
            cfg.beta = beta;
            let out = RddTrainer::new(cfg).run(&data);
            rdd_obs::event(
                "sweep",
                &[
                    ("dataset", Json::from(data.name.as_str())),
                    ("gamma", Json::from(gamma)),
                    ("beta", Json::from(beta)),
                    ("ensemble_test_acc", Json::from(out.ensemble_test_acc)),
                    ("single_test_acc", Json::from(out.single_test_acc)),
                    (
                        "average_base_test_acc",
                        Json::from(out.average_base_test_acc()),
                    ),
                    ("wall_time_s", Json::from(out.wall_time_s)),
                ],
            );
            rows.push(vec![
                format!("{gamma}"),
                format!("{beta}"),
                format!("{:.1}%", 100.0 * out.ensemble_test_acc),
                format!("{:.1}%", 100.0 * out.single_test_acc),
                format!("{:.1}%", 100.0 * out.average_base_test_acc()),
                format!("{:.0}s", out.wall_time_s),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &["gamma", "beta", "ensemble", "single", "avg base", "wall"],
            &rows
        )
    );
    rdd_obs::flush();
}
