//! Diagnostic: sweep RDD loss configurations on the synthetic presets.

use rdd_core::{DistillTarget, RddConfig, RddTrainer};
use rdd_graph::SynthConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (data, base): (_, fn(f32) -> RddConfig) = match args.first().map(String::as_str) {
        Some("citeseer") => (SynthConfig::citeseer_sim().generate(), RddConfig::citation),
        Some("pubmed") => (SynthConfig::pubmed_sim().generate(), RddConfig::citation),
        Some("nell") => (SynthConfig::nell_sim().generate(), |g| {
            let mut c = RddConfig::nell();
            c.gamma_initial = g;
            c
        }),
        _ => (SynthConfig::cora_sim().generate(), RddConfig::citation),
    };
    for gamma in [0.3f32, 1.0, 3.0] {
        for beta in [0.0f32, 1.0, 10.0] {
            let mut cfg = base(gamma);
            cfg.distill = DistillTarget::Probs;
            cfg.beta = beta;
            let out = RddTrainer::new(cfg).run(&data);
            println!(
                "g={gamma} b={beta:<4} ens {:.1}%  single {:.1}%  avg {:.1}%  ({:.0}s)",
                100.0 * out.ensemble_test_acc,
                100.0 * out.single_test_acc,
                100.0 * out.average_base_test_acc(),
                out.wall_time_s,
            );
        }
    }
}
