//! Table 9 — training cost to reach a target accuracy on Cora.
//!
//! The paper reports, for each ensemble method, the average wall-clock time
//! per base model, the number of base models needed to reach 84% on Cora,
//! and the product. Here the target is set relative to the measured plain
//! GCN (GCN + 1.1pp, mirroring the paper's 81.8 → 84.0 gap) so the
//! comparison is meaningful on the synthetic dataset; absolute seconds
//! differ from the paper's GPU numbers but the *ratios* are the claim.

use rdd_baselines::{bagging, bans, BansConfig};
use rdd_bench::{model_configs, preset, rdd_config, TablePrinter};
use rdd_core::RddTrainer;
use rdd_models::{train, Gcn, GraphContext, PredictorExt};
use rdd_tensor::seeded_rng;

fn main() {
    let cfg = preset("cora");
    let (gcn_cfg, train_cfg) = model_configs(cfg.name);
    let data = cfg.generate();
    const MAX_MODELS: usize = 5;

    // Reference single GCN sets the target.
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(1);
    let mut gcn = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
    train(&mut gcn, &ctx, &data, &train_cfg, &mut rng, None);
    let gcn_acc = data.test_accuracy(&gcn.predictor(&ctx).predict());
    let target = gcn_acc + 0.011;
    println!(
        "single GCN = {:.1}%; target accuracy = {:.1}% (paper: GCN 81.8% -> target 84.0%)",
        100.0 * gcn_acc,
        100.0 * target
    );

    let b = bagging(&data, &gcn_cfg, &train_cfg, MAX_MODELS, 1);
    let bn = bans(
        &data,
        &gcn_cfg,
        &train_cfg,
        MAX_MODELS,
        &BansConfig::default(),
        1,
    );
    let mut rdd_cfg = rdd_config(cfg.name);
    rdd_cfg.num_base_models = MAX_MODELS;
    let r = RddTrainer::new(rdd_cfg).run(&data);

    // Models needed = first ensemble prefix reaching the target.
    let needed = |prefix: &[f32]| -> Option<usize> {
        prefix.iter().position(|&a| a >= target).map(|i| i + 1)
    };
    let rows = [
        (
            "Bagging",
            b.per_model_time_s.clone(),
            needed(&b.prefix_test_accs),
            b.prefix_test_accs.clone(),
        ),
        (
            "BANs",
            bn.per_model_time_s.clone(),
            needed(&bn.prefix_test_accs),
            bn.prefix_test_accs.clone(),
        ),
        (
            "RDD(Ensemble)",
            r.base_models.iter().map(|m| m.report.wall_time_s).collect(),
            needed(&r.prefix_ensemble_test_accs),
            r.prefix_ensemble_test_accs.clone(),
        ),
    ];

    println!();
    println!(
        "Table 9: training cost to reach the target (CPU seconds; paper GPU values in parens)"
    );
    let tp = TablePrinter::new(26, 14);
    tp.header("", &["Bagging", "BANs", "RDD(Ensemble)"]);
    let avg_times: Vec<f64> = rows
        .iter()
        .map(|(_, times, _, _)| times.iter().sum::<f64>() / times.len() as f64)
        .collect();
    let cells: Vec<String> = avg_times
        .iter()
        .zip(rdd_bench::paper::T9)
        .map(|(t, p)| format!("{t:.2} ({:.2})", p.1))
        .collect();
    tp.row(
        "Avg time per model (s)",
        &cells.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let cells: Vec<String> = rows
        .iter()
        .zip(rdd_bench::paper::T9)
        .map(|((_, _, n, _), p)| match n {
            Some(n) => format!("{n} ({})", p.2),
            None => format!(">{MAX_MODELS} ({})", p.2),
        })
        .collect();
    tp.row(
        "Base models to target",
        &cells.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let cells: Vec<String> = rows
        .iter()
        .zip(avg_times.iter())
        .zip(rdd_bench::paper::T9)
        .map(|(((_, _, n, _), avg), p)| match n {
            Some(n) => format!("{:.2} ({:.3})", *n as f64 * avg, p.3),
            None => format!("n/a ({:.3})", p.3),
        })
        .collect();
    tp.row(
        "Total time (s)",
        &cells.iter().map(String::as_str).collect::<Vec<_>>(),
    );

    println!();
    println!("ensemble accuracy by number of base models:");
    for (label, _, _, prefix) in &rows {
        let accs: Vec<String> = prefix.iter().map(|a| format!("{:.1}", 100.0 * a)).collect();
        println!("  {label:<14} {}", accs.join(" -> "));
    }
}
