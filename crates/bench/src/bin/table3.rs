//! Table 3 — RDD (single and ensemble) against the ensemble baselines
//! (single GCN, Bagging, BANs) on all four datasets.
//!
//! Every ensemble uses five two-layer GCN base models, as in the paper.
//! Results are means over `RDD_TRIALS` dataset/seed trials (paper: 10).
//! Pass dataset names as arguments to restrict the run, e.g.
//! `table3 cora citeseer`.

use rdd_baselines::{bagging, bans, BansConfig};
use rdd_bench::{
    mean_std, model_configs, num_trials, paper, pct, preset, rdd_config, TablePrinter,
};
use rdd_core::RddTrainer;
use rdd_models::{train, Gcn, GraphContext, PredictorExt};
use rdd_tensor::seeded_rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["cora", "citeseer", "pubmed", "nell"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let trials = num_trials();
    const NUM_MODELS: usize = 5;

    // rows[method][dataset] = (mean, std)
    let methods = [
        "Single GCN",
        "RDD(Single)",
        "Bagging",
        "BANs",
        "RDD(Ensemble)",
    ];
    let mut measured = vec![vec![(0.0f32, 0.0f32); names.len()]; methods.len()];

    for (d, name) in names.iter().enumerate() {
        let cfg = preset(name);
        let (gcn_cfg, train_cfg) = model_configs(cfg.name);
        let mut accs = vec![Vec::with_capacity(trials); methods.len()];
        let data = cfg.generate();
        let ctx = GraphContext::new(&data);
        for t in 0..trials as u64 {
            let mut rng = seeded_rng(t);
            let mut gcn = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
            train(&mut gcn, &ctx, &data, &train_cfg, &mut rng, None);
            accs[0].push(data.test_accuracy(&gcn.predictor(&ctx).predict()));

            let mut rdd_cfg = rdd_config(cfg.name);
            rdd_cfg.num_base_models = NUM_MODELS;
            rdd_cfg.seed = t;
            let rdd = RddTrainer::new(rdd_cfg).run(&data);
            accs[1].push(rdd.single_test_acc);
            accs[4].push(rdd.ensemble_test_acc);

            accs[2].push(bagging(&data, &gcn_cfg, &train_cfg, NUM_MODELS, t).ensemble_test_acc);
            accs[3].push(
                bans(
                    &data,
                    &gcn_cfg,
                    &train_cfg,
                    NUM_MODELS,
                    &BansConfig::default(),
                    t,
                )
                .ensemble_test_acc,
            );
        }
        for (m, a) in accs.iter().enumerate() {
            measured[m][d] = mean_std(a);
        }
        eprintln!("[table3] finished {name}");
    }

    let paper_rows: [&[f32; 4]; 5] = [
        &paper::T3_GCN,
        &paper::T3_RDD_SINGLE,
        &paper::T3_BAGGING,
        &paper::T3_BANS,
        &paper::T3_RDD_ENSEMBLE,
    ];
    let paper_idx = |name: &str| match name {
        n if n.starts_with("cora") => 0,
        n if n.starts_with("citeseer") => 1,
        n if n.starts_with("pubmed") => 2,
        _ => 3,
    };

    println!("Table 3: accuracy (%) — measured (paper), {trials} trials, 5 base models");
    let tp = TablePrinter::new(14, 13);
    let headers: Vec<&str> = names.clone();
    tp.header("Models", &headers);
    for (m, method) in methods.iter().enumerate() {
        let cells: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(d, n)| {
                format!(
                    "{} ({:.1})",
                    pct(measured[m][d].0),
                    paper_rows[m][paper_idx(n)]
                )
            })
            .collect();
        tp.row(
            method,
            &cells.iter().map(String::as_str).collect::<Vec<_>>(),
        );
    }
}
