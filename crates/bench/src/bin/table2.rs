//! Table 2 — overview of the four datasets.
//!
//! Prints the paper's reported statistics next to the generated synthetic
//! equivalents (the generator matches N/#features/#classes exactly and
//! targets the edge count; label rate follows the Planetoid protocol).

use rdd_bench::preset;
use rdd_graph::DatasetStats;

fn main() {
    let paper_rows = [
        ("Cora", 2708usize, 1433usize, 5429usize, 7usize),
        ("Citeseer", 3327, 3703, 4732, 6),
        ("Pubmed", 19717, 500, 44338, 3),
        ("NELL", 65755, 61278, 266144, 210),
    ];
    println!("paper Table 2:");
    println!(
        "{:<10} {:>7} {:>9} {:>8} {:>8}",
        "dataset", "nodes", "features", "edges", "classes"
    );
    for (name, n, f, e, k) in paper_rows {
        println!("{name:<10} {n:>7} {f:>9} {e:>8} {k:>8}");
    }
    println!();
    println!("generated synthetic equivalents (nell-sim is the scaled variant; see DESIGN.md):");
    println!("{}", DatasetStats::header());
    for name in ["cora", "citeseer", "pubmed", "nell"] {
        let data = preset(name).generate();
        println!("{}", DatasetStats::of(&data).row());
    }
}
