//! Table 4 — RDD's single model against non-ensemble state-of-the-art on
//! the three citation networks.
//!
//! The paper draws most baselines (Planetoid, LGCN, GPNN, NGCN, DGCN,
//! APPNP, GAT) from their original publications; those literature constants
//! are reproduced here verbatim. LP, GCN and RDD(Single) are measured on
//! the synthetic equivalents.

use rdd_baselines::lp::{predict as lp_predict, LpConfig};
use rdd_bench::{
    mean_std, model_configs, num_trials, paper, pct, preset, rdd_config, TablePrinter,
};
use rdd_core::RddTrainer;
use rdd_models::{train, Gcn, GraphContext, PredictorExt};
use rdd_tensor::seeded_rng;

fn main() {
    let names = ["cora", "citeseer", "pubmed"];
    let trials = num_trials();

    let mut lp_acc = [(0.0f32, 0.0f32); 3];
    let mut gcn_acc = [(0.0f32, 0.0f32); 3];
    let mut rdd_acc = [(0.0f32, 0.0f32); 3];

    for (d, name) in names.iter().enumerate() {
        let cfg = preset(name);
        let (gcn_cfg, train_cfg) = model_configs(cfg.name);
        let (mut lp_runs, mut gcn_runs, mut rdd_runs) = (Vec::new(), Vec::new(), Vec::new());
        let data = cfg.generate();
        for t in 0..trials as u64 {
            lp_runs.push(data.test_accuracy(&lp_predict(&data, &LpConfig::default())));

            let ctx = GraphContext::new(&data);
            let mut rng = seeded_rng(t);
            let mut gcn = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
            train(&mut gcn, &ctx, &data, &train_cfg, &mut rng, None);
            gcn_runs.push(data.test_accuracy(&gcn.predictor(&ctx).predict()));

            let mut rdd_cfg = rdd_config(cfg.name);
            rdd_cfg.seed = t;
            rdd_runs.push(RddTrainer::new(rdd_cfg).run(&data).single_test_acc);
        }
        lp_acc[d] = mean_std(&lp_runs);
        gcn_acc[d] = mean_std(&gcn_runs);
        rdd_acc[d] = mean_std(&rdd_runs);
        eprintln!("[table4] finished {name}");
    }

    println!("Table 4: single-model accuracy (%) on the citation networks, {trials} trials");
    println!("(literature rows are the numbers the paper quotes; measured rows are ours)");
    let tp = TablePrinter::new(18, 13);
    tp.header("Models", &["cora", "citeseer", "pubmed"]);
    for (name, vals) in paper::T4_LITERATURE {
        if *name == "LP" || *name == "GCN" {
            continue; // printed below with measured values
        }
        let cells: Vec<String> = vals.iter().map(|v| format!("(paper {v:.1})")).collect();
        tp.row(name, &cells.iter().map(String::as_str).collect::<Vec<_>>());
    }
    let print_measured =
        |tp: &TablePrinter, label: &str, ours: &[(f32, f32); 3], paper_vals: &[f32; 3]| {
            let cells: Vec<String> = ours
                .iter()
                .zip(paper_vals)
                .map(|((m, _), p)| format!("{} ({p:.1})", pct(*m)))
                .collect();
            tp.row(label, &cells.iter().map(String::as_str).collect::<Vec<_>>());
        };
    print_measured(&tp, "LP", &lp_acc, &paper::T4_LITERATURE[0].1);
    print_measured(&tp, "GCN", &gcn_acc, &paper::T4_LITERATURE[8].1);
    print_measured(&tp, "RDD(Single)", &rdd_acc, &paper::T4_RDD_SINGLE);
}
