//! Structural analysis of the synthetic presets, next to the published
//! statistics of the real datasets they substitute for. Supports DESIGN.md's
//! substitution-fidelity argument: beyond size and homophily, the presets
//! should reproduce the *structural regime* (sparse, disassortative,
//! low-clustering graphs where most nodes sit 2–4 hops from a label).

use rdd_bench::preset;
use rdd_graph::analysis::{
    average_clustering, degree_assortativity, distance_histogram, distance_to_set, k_core,
};

fn main() {
    // Published reference values for the real datasets (from the original
    // dataset papers / common benchmark surveys).
    println!("real datasets (literature): clustering — Cora 0.24, Citeseer 0.14, Pubmed 0.06;");
    println!("all three mildly disassortative; most unlabeled nodes within 4 hops of a label.");
    println!();
    println!(
        "{:<14} {:>10} {:>13} {:>9} {:>30}",
        "preset", "clustering", "assortativity", "max core", "label-distance histogram"
    );
    for name in ["cora", "citeseer", "pubmed", "nell"] {
        let data = preset(name).generate();
        let clustering = average_clustering(&data.graph);
        let assort = degree_assortativity(&data.graph);
        let core = k_core(&data.graph);
        let max_core = core.iter().copied().max().unwrap_or(0);
        let dist = distance_to_set(&data.graph, &data.train_idx);
        let hist = distance_histogram(&dist);
        println!(
            "{:<14} {:>10.3} {:>13.3} {:>9} {:>30}",
            data.name,
            clustering,
            assort,
            max_core,
            format!("{hist:?}")
        );
    }
    println!();
    println!("histogram buckets: [0 hops (labeled), 1, 2, 3, 4+, unreachable]");
}
