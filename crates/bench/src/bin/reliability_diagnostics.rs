//! Reliability diagnostics — the paper's core premise, measured directly.
//!
//! §3 claims that filtering teacher outputs by node reliability separates
//! trustworthy from untrustworthy knowledge. This binary quantifies that on
//! cora-sim: the teacher's accuracy *on the reliable set* should be much
//! higher than its overall accuracy, the distillation set `V_b` should
//! concentrate the student's mistakes, and reliable edges should be
//! intra-class far more often than raw edges.
//!
//! Each measurement is also emitted as a structured `reliability_diag`
//! telemetry event, so `RDD_TRACE=<path>` captures the sweep as JSONL
//! alongside the human-readable tables below.

use rdd_core::compute_reliability;
use rdd_graph::accuracy_over;
use rdd_models::{expected_calibration_error, train, Gcn, GraphContext, PredictorExt};
use rdd_obs::{render_table, Json};
use rdd_tensor::seeded_rng;

fn main() {
    let cfg = rdd_bench::preset("cora");
    let data = cfg.generate();
    let (gcn_cfg, train_cfg) = rdd_bench::model_configs(cfg.name);
    let ctx = GraphContext::new(&data);

    // Teacher: a converged GCN. Student: a half-trained GCN (the regime
    // where reliability filtering matters most).
    let mut rng = seeded_rng(1);
    let mut teacher = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
    train(&mut teacher, &ctx, &data, &train_cfg, &mut rng, None);
    let mut rng = seeded_rng(2);
    let mut student = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
    let mut short = train_cfg.clone();
    short.epochs = 30;
    short.min_epochs = 30;
    train(&mut student, &ctx, &data, &short, &mut rng, None);

    let teacher_proba = teacher.predictor(&ctx).proba();
    let student_proba = student.predictor(&ctx).proba();
    let teacher_pred = teacher_proba.argmax_rows();
    let student_pred = student_proba.argmax_rows();
    let mut is_labeled = vec![false; data.n()];
    for &i in &data.train_idx {
        is_labeled[i] = true;
    }

    let all: Vec<usize> = (0..data.n()).collect();
    let teacher_acc = accuracy_over(&data.labels, &teacher_pred, &all);
    let student_acc = accuracy_over(&data.labels, &student_pred, &all);
    println!(
        "teacher overall accuracy          {:.1}%",
        100.0 * teacher_acc
    );
    println!(
        "student (30 epochs) accuracy      {:.1}%",
        100.0 * student_acc
    );
    println!();

    let mut rows = Vec::new();
    for p in [0.2f32, 0.4, 0.6, 0.8] {
        let sets = compute_reliability(
            &teacher_proba,
            &student_proba,
            &data.labels,
            &is_labeled,
            p,
            &data.graph,
        );
        let reliable_idx: Vec<usize> = (0..data.n()).filter(|&i| sets.reliable[i]).collect();
        let t_vr = accuracy_over(&data.labels, &teacher_pred, &reliable_idx);
        let t_vb = accuracy_over(&data.labels, &teacher_pred, &sets.distill);
        let s_vb = accuracy_over(&data.labels, &student_pred, &sets.distill);
        rdd_obs::event(
            "reliability_diag",
            &[
                ("p", Json::from(p)),
                ("v_r", Json::from(reliable_idx.len())),
                ("v_b", Json::from(sets.distill.len())),
                ("e_r", Json::from(sets.edges.len())),
                ("teacher_acc", Json::from(teacher_acc)),
                ("student_acc", Json::from(student_acc)),
                ("teacher_at_v_r", Json::from(t_vr)),
                ("teacher_at_v_b", Json::from(t_vb)),
                ("student_at_v_b", Json::from(s_vb)),
            ],
        );
        rows.push(vec![
            format!("{:.0}%", 100.0 * p),
            reliable_idx.len().to_string(),
            format!("{:.1}%", 100.0 * t_vr),
            sets.distill.len().to_string(),
            format!("{:.1}%", 100.0 * t_vb),
            format!("{:.1}%", 100.0 * s_vb),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "p",
                "|V_r|",
                "teacher@V_r",
                "|V_b|",
                "teacher@V_b",
                "student@V_b"
            ],
            &rows,
        )
    );

    // Edge reliability: intra-class fraction of reliable vs all edges.
    let sets = compute_reliability(
        &teacher_proba,
        &student_proba,
        &data.labels,
        &is_labeled,
        0.4,
        &data.graph,
    );
    let intra = |edges: &[(u32, u32)]| -> f32 {
        if edges.is_empty() {
            return 0.0;
        }
        edges
            .iter()
            .filter(|&&(a, b)| data.labels[a as usize] == data.labels[b as usize])
            .count() as f32
            / edges.len() as f32
    };
    println!();
    println!(
        "intra-class fraction: all edges {:.1}%  reliable edges {:.1}%  ({} of {} edges kept)",
        100.0 * intra(data.graph.edges()),
        100.0 * intra(&sets.edges),
        sets.edges.len(),
        data.graph.num_edges()
    );

    // Calibration: the reliable subset should be better calibrated.
    let reliable_idx: Vec<usize> = (0..data.n()).filter(|&i| sets.reliable[i]).collect();
    let ece_all = expected_calibration_error(&teacher_proba, &data.labels, &all, 10);
    let ece_rel = expected_calibration_error(&teacher_proba, &data.labels, &reliable_idx, 10);
    println!(
        "teacher ECE: all nodes {:.3}  reliable nodes {:.3}",
        ece_all, ece_rel
    );
    rdd_obs::event(
        "reliability_edges",
        &[
            ("intra_all", Json::from(intra(data.graph.edges()))),
            ("intra_reliable", Json::from(intra(&sets.edges))),
            ("edges_kept", Json::from(sets.edges.len())),
            ("edges_total", Json::from(data.graph.num_edges())),
            ("ece_all", Json::from(ece_all)),
            ("ece_reliable", Json::from(ece_rel)),
        ],
    );
    println!();
    println!("expected shape: teacher@V_r >> teacher overall; student@V_b well below");
    println!("its overall accuracy (V_b concentrates its mistakes); reliable edges");
    println!("nearly all intra-class; lower ECE on the reliable set.");
    rdd_obs::flush();
}
