//! Table 6 — impact of the ensemble technique on Cora: average base-model
//! accuracy vs combined-model accuracy and the resulting gain, for Bagging,
//! BANs and RDD.

use rdd_baselines::{bagging, bans, BansConfig};
use rdd_bench::{mean_std, model_configs, num_trials, paper, preset, rdd_config, TablePrinter};
use rdd_core::RddTrainer;

fn main() {
    let cfg = preset("cora");
    let (gcn_cfg, train_cfg) = model_configs(cfg.name);
    let trials = num_trials();
    const NUM_MODELS: usize = 5;

    // (average, ensemble) per method per trial.
    let mut avg = [Vec::new(), Vec::new(), Vec::new()];
    let mut ens = [Vec::new(), Vec::new(), Vec::new()];
    let data = cfg.generate();
    for t in 0..trials as u64 {
        let b = bagging(&data, &gcn_cfg, &train_cfg, NUM_MODELS, t);
        avg[0].push(b.average_base_test_acc());
        ens[0].push(b.ensemble_test_acc);
        let bn = bans(
            &data,
            &gcn_cfg,
            &train_cfg,
            NUM_MODELS,
            &BansConfig::default(),
            t,
        );
        avg[1].push(bn.average_base_test_acc());
        ens[1].push(bn.ensemble_test_acc);
        let mut rdd_cfg = rdd_config(cfg.name);
        rdd_cfg.num_base_models = NUM_MODELS;
        rdd_cfg.seed = t;
        let r = RddTrainer::new(rdd_cfg).run(&data);
        avg[2].push(r.average_base_test_acc());
        ens[2].push(r.ensemble_test_acc);
    }

    println!("Table 6: ensemble impact on cora-sim, {trials} trials — measured (paper)");
    let tp = TablePrinter::new(10, 16);
    tp.header("Accuracy", &["Bagging", "BANs", "RDD(Ensemble)"]);
    let fmt_row = |ours: &[Vec<f32>; 3], col: usize| -> String {
        let (m, _) = mean_std(&ours[col]);
        format!("{:.1}", 100.0 * m)
    };
    let rows: Vec<(&str, Vec<String>)> = vec![
        (
            "Average",
            (0..3)
                .map(|c| format!("{} ({:.1})", fmt_row(&avg, c), paper::T6[c].1))
                .collect(),
        ),
        (
            "Ensemble",
            (0..3)
                .map(|c| format!("{} ({:.1})", fmt_row(&ens, c), paper::T6[c].2))
                .collect(),
        ),
        (
            "Gain",
            (0..3)
                .map(|c| {
                    let (ma, _) = mean_std(&avg[c]);
                    let (me, _) = mean_std(&ens[c]);
                    format!("{:.1} ({:.1})", 100.0 * (me - ma), paper::T6[c].3)
                })
                .collect(),
        ),
    ];
    for (label, cells) in rows {
        tp.row(label, &cells.iter().map(String::as_str).collect::<Vec<_>>());
    }
}
