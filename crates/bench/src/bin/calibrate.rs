//! Generator calibration report: measured dataset statistics plus the
//! accuracy of diagnostic models (MLP = features only, LP = structure only,
//! GCN = both) on each synthetic preset. Used to keep the presets aligned
//! with the paper's Table 2 statistics and single-GCN accuracies.
//!
//! ```sh
//! cargo run --release -p rdd-bench --bin calibrate [preset...]
//! ```

use rdd_baselines::lp::{predict as lp_predict, LpConfig};
use rdd_graph::{DatasetStats, SynthConfig};
use rdd_models::{train, Gcn, GcnConfig, GraphContext, Mlp, PredictorExt, TrainConfig};
use rdd_tensor::seeded_rng;

fn preset_by_name(name: &str) -> Option<SynthConfig> {
    match name {
        "cora" | "cora-sim" => Some(SynthConfig::cora_sim()),
        "citeseer" | "citeseer-sim" => Some(SynthConfig::citeseer_sim()),
        "pubmed" | "pubmed-sim" => Some(SynthConfig::pubmed_sim()),
        "nell" | "nell-sim" => Some(SynthConfig::nell_sim()),
        "tiny" => Some(SynthConfig::tiny()),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let presets: Vec<SynthConfig> = if args.is_empty() {
        vec![SynthConfig::cora_sim(), SynthConfig::citeseer_sim()]
    } else {
        args.iter()
            .map(|a| preset_by_name(a).unwrap_or_else(|| panic!("unknown preset {a}")))
            .collect()
    };

    println!("{}", DatasetStats::header());
    for cfg in &presets {
        let data = cfg.generate();
        println!("{}", DatasetStats::of(&data).row());

        let ctx = GraphContext::new(&data);
        let (gcn_cfg, train_cfg) = if cfg.name.starts_with("nell") {
            (GcnConfig::nell(), TrainConfig::nell())
        } else {
            (GcnConfig::citation(), TrainConfig::citation())
        };

        let mut rng = seeded_rng(1);
        let mut mlp = Mlp::new(&ctx, gcn_cfg.clone(), &mut rng);
        train(&mut mlp, &ctx, &data, &train_cfg, &mut rng, None);
        let mlp_acc = data.test_accuracy(&mlp.predictor(&ctx).predict());

        let lp_acc = data.test_accuracy(&lp_predict(&data, &LpConfig::default()));

        let mut accs = Vec::new();
        for seed in 0..3u64 {
            let mut rng = seeded_rng(seed);
            let mut gcn = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
            let rep = train(&mut gcn, &ctx, &data, &train_cfg, &mut rng, None);
            let acc = data.test_accuracy(&gcn.predictor(&ctx).predict());
            accs.push((acc, rep.epochs_run, rep.wall_time_s));
        }
        let mean: f32 = accs.iter().map(|a| a.0).sum::<f32>() / accs.len() as f32;
        println!(
            "  MLP {:.1}%  LP {:.1}%  GCN {:.1}% (runs: {})",
            100.0 * mlp_acc,
            100.0 * lp_acc,
            100.0 * mean,
            accs.iter()
                .map(|(a, e, t)| format!("{:.1}%@{e}ep/{t:.1}s", 100.0 * a))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
