//! Table 8 — ablation of each RDD contribution on the citation networks:
//! No-L2, No-Lreg, WNR (no node reliability), WER (no edge reliability),
//! WKR (neither reliability), WEW (uniform ensemble weights).

use rdd_bench::{mean_std, num_trials, paper, preset, rdd_config, TablePrinter};
use rdd_core::{Ablation, RddTrainer};

fn main() {
    let names = ["cora", "citeseer", "pubmed"];
    let trials = num_trials();
    let variants: [(&str, Ablation); 7] = [
        ("No L2", Ablation::no_l2()),
        ("No Lreg", Ablation::no_lreg()),
        ("WNR", Ablation::without_node_reliability()),
        ("WER", Ablation::without_edge_reliability()),
        ("WKR", Ablation::without_knowledge_reliability()),
        ("WEW", Ablation::without_entropy_weights()),
        ("RDD", Ablation::default()),
    ];

    let mut measured = vec![vec![0.0f32; names.len()]; variants.len()];
    for (d, name) in names.iter().enumerate() {
        let cfg = preset(name);
        let data = cfg.generate();
        for (v, (_, ablation)) in variants.iter().enumerate() {
            let mut accs = Vec::with_capacity(trials);
            for t in 0..trials as u64 {
                let mut rdd_cfg = rdd_config(cfg.name);
                rdd_cfg.ablation = *ablation;
                rdd_cfg.seed = t;
                accs.push(RddTrainer::new(rdd_cfg).run(&data).ensemble_test_acc);
            }
            measured[v][d] = mean_std(&accs).0;
        }
        eprintln!("[table8] finished {name}");
    }

    println!("Table 8: ablation, ensemble accuracy (%) — measured Δ vs full RDD (paper Δ), {trials} trials");
    let tp = TablePrinter::new(10, 20);
    tp.header("Method", &names);
    let full_idx = variants.len() - 1;
    for (v, (label, _)) in variants.iter().enumerate() {
        let cells: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(d, _)| {
                let ours = 100.0 * measured[v][d];
                let ours_delta = ours - 100.0 * measured[full_idx][d];
                let paper_acc = paper::T8[v].1[d];
                let paper_delta = paper_acc - paper::T8[full_idx].1[d];
                if v == full_idx {
                    format!("{ours:.1} ({paper_acc:.1})")
                } else {
                    format!("{ours:.1} Δ{ours_delta:+.1} ({paper_delta:+.1})")
                }
            })
            .collect();
        tp.row(label, &cells.iter().map(String::as_str).collect::<Vec<_>>());
    }
}
