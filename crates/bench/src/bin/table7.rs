//! Table 7 — hyperparameter grid on Cora: reliability fraction `p`,
//! knowledge-transfer weight `γ_initial`, edge-regularizer strength `β`.
//!
//! The paper reports the grid `p ∈ {40, 80} × γ ∈ {0, 0.5, 1, 1.5} × β ∈
//! {0, 5, 10, 15}` with a best of 86.1% at `(p=40, γ=1, β=10)`. The same
//! grid is measured here on cora-sim (single trial per cell by default —
//! 32 RDD runs; set `RDD_TRIALS` for averaging).

use rdd_bench::{mean_std, num_trials, preset, rdd_config};
use rdd_core::RddTrainer;

fn main() {
    let cfg = preset("cora");
    let data = cfg.generate();
    let trials = num_trials().min(3);
    let gammas = [0.0f32, 0.5, 1.0, 1.5];
    let betas = [0.0f32, 5.0, 10.0, 15.0];

    println!("Table 7: RDD ensemble accuracy (%) on cora-sim over the paper's grid, {trials} trial(s)/cell");
    for p in [0.4f32, 0.8] {
        println!("\np = {:.0}%", p * 100.0);
        print!("{:>8}", "");
        for g in gammas {
            print!(" {:>9}", format!("g={g}"));
        }
        println!();
        for b in betas {
            print!("{:>8}", format!("b={b}"));
            for g in gammas {
                let mut accs = Vec::with_capacity(trials);
                for t in 0..trials as u64 {
                    let mut rdd_cfg = rdd_config(cfg.name);
                    rdd_cfg.p = p;
                    rdd_cfg.gamma_initial = g;
                    rdd_cfg.beta = b;
                    rdd_cfg.seed = t;
                    accs.push(RddTrainer::new(rdd_cfg).run(&data).ensemble_test_acc);
                }
                let (m, _) = mean_std(&accs);
                print!(" {:>9.1}", 100.0 * m);
            }
            println!();
        }
    }
    println!("\npaper (p=40): best 86.1 at γ=1, β=10; γ=0 column ~84.2–84.6; β=0 row ~84.2–85.3.");
}
