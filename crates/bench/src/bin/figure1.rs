//! Figure 1 — GCN accuracy on Cora as the label rate shrinks (1.3%–5.2%).
//!
//! The paper's motivating figure: a plain GCN degrades quickly with fewer
//! labels. The label rate is `classes · per_class / n`; on Cora 20/class is
//! 5.2% and 5/class is 1.3%.

use rdd_bench::{mean_std, model_configs, num_trials, pct_pm, preset};
use rdd_models::{train, Gcn, GraphContext, PredictorExt};
use rdd_tensor::seeded_rng;

fn main() {
    let cfg = preset("cora");
    let (gcn_cfg, train_cfg) = model_configs(cfg.name);
    let trials = num_trials();

    println!(
        "Figure 1: GCN accuracy on cora-sim vs label rate ({} trials/point)",
        trials
    );
    println!(
        "{:>10} {:>10} {:>12}",
        "per_class", "label_rate", "accuracy"
    );
    for per_class in [5usize, 8, 11, 14, 17, 20] {
        let mut accs = Vec::with_capacity(trials);
        for t in 0..trials as u64 {
            let mut data = cfg.generate_with_seed(cfg.seed.wrapping_add(t * 7919));
            let mut rng = seeded_rng(100 + t);
            data.resample_train(per_class, &mut rng);
            let ctx = GraphContext::new(&data);
            let mut model = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
            train(&mut model, &ctx, &data, &train_cfg, &mut rng, None);
            accs.push(data.test_accuracy(&model.predictor(&ctx).predict()));
        }
        let (m, s) = mean_std(&accs);
        let rate = 100.0 * (per_class * cfg.num_classes) as f32 / cfg.n as f32;
        println!("{per_class:>10} {rate:>9.1}% {:>12}", pct_pm(m, s));
    }
    println!();
    println!("paper: accuracy rises from ~75% at 1.3% label rate to ~81.8% at 5.2%.");
}
