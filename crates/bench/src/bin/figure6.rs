//! Figure 6 — accuracy on Cora as the number of labeled nodes per class
//! grows: (a) single models (GCN, ResGCN, DenseGCN, JK-Net, RDD-Single),
//! (b) ensembles (Bagging, BANs, RDD-Ensemble).
//!
//! The validation and test sets are held fixed while the training set is
//! resampled to each label budget, matching §5.6.

use rdd_baselines::{bagging, bans, BansConfig};
use rdd_bench::{model_configs, preset, rdd_config, TablePrinter};
use rdd_core::RddTrainer;
use rdd_graph::Dataset;
use rdd_models::{
    train, DenseGcn, Gcn, GcnConfig, GraphContext, JkNet, Model, PredictorExt, ResGcn,
};
use rdd_tensor::seeded_rng;

fn single_acc(
    data: &Dataset,
    ctx: &GraphContext,
    train_cfg: &rdd_models::TrainConfig,
    seed: u64,
    build: impl Fn(&GraphContext, &mut rand::rngs::StdRng) -> Box<dyn Model>,
) -> f32 {
    let mut rng = seeded_rng(seed);
    let mut model = build(ctx, &mut rng);
    train(model.as_mut(), ctx, data, train_cfg, &mut rng, None);
    data.test_accuracy(&model.as_ref().predictor(&ctx).predict())
}

fn main() {
    let cfg = preset("cora");
    let (gcn_cfg, train_cfg) = model_configs(cfg.name);
    // 77 labeled/class needs every class to have 77 spare nodes outside
    // val/test; the round-robin generator guarantees ~(2708-1500)/7 ≈ 172.
    let budgets = [5usize, 10, 15, 20, 35, 50, 65, 77];
    const NUM_MODELS: usize = 5;

    let single_methods = ["GCN", "ResGCN", "DenseGCN", "JK-Net", "RDD(Single)"];
    let ensemble_methods = ["Bagging", "BANs", "RDD(Ensemble)"];
    let mut single = vec![Vec::new(); single_methods.len()];
    let mut ensembles = vec![Vec::new(); ensemble_methods.len()];

    for (bi, &per_class) in budgets.iter().enumerate() {
        let mut data = cfg.generate();
        let mut rng = seeded_rng(42 + bi as u64);
        data.resample_train(per_class, &mut rng);
        let ctx = GraphContext::new(&data);

        single[0].push(single_acc(&data, &ctx, &train_cfg, 1, |c, r| {
            Box::new(Gcn::new(c, gcn_cfg.clone(), r))
        }));
        single[1].push(single_acc(&data, &ctx, &train_cfg, 1, |c, r| {
            Box::new(ResGcn::new(c, GcnConfig::deep(16, 2, 0.5), r))
        }));
        single[2].push(single_acc(&data, &ctx, &train_cfg, 1, |c, r| {
            Box::new(DenseGcn::new(c, GcnConfig::deep(16, 2, 0.5), r))
        }));
        single[3].push(single_acc(&data, &ctx, &train_cfg, 1, |c, r| {
            Box::new(JkNet::new(c, GcnConfig::deep(16, 2, 0.5), r))
        }));

        let mut rdd_cfg = rdd_config(cfg.name);
        rdd_cfg.num_base_models = NUM_MODELS;
        let rdd = RddTrainer::new(rdd_cfg).run(&data);
        single[4].push(rdd.single_test_acc);
        ensembles[2].push(rdd.ensemble_test_acc);

        ensembles[0].push(bagging(&data, &gcn_cfg, &train_cfg, NUM_MODELS, 1).ensemble_test_acc);
        ensembles[1].push(
            bans(
                &data,
                &gcn_cfg,
                &train_cfg,
                NUM_MODELS,
                &BansConfig::default(),
                1,
            )
            .ensemble_test_acc,
        );
        eprintln!("[figure6] finished {per_class}/class");
    }

    let budget_headers: Vec<String> = budgets.iter().map(|b| b.to_string()).collect();
    let headers: Vec<&str> = budget_headers.iter().map(String::as_str).collect();

    println!("Figure 6(a): single-model accuracy (%) on cora-sim vs labeled nodes per class");
    let tp = TablePrinter::new(14, 6);
    tp.header("labeled/class", &headers);
    for (m, name) in single_methods.iter().enumerate() {
        let cells: Vec<String> = single[m]
            .iter()
            .map(|a| format!("{:.1}", 100.0 * a))
            .collect();
        tp.row(name, &cells.iter().map(String::as_str).collect::<Vec<_>>());
    }

    println!();
    println!("Figure 6(b): ensemble accuracy (%) on cora-sim vs labeled nodes per class");
    tp.header("labeled/class", &headers);
    for (m, name) in ensemble_methods.iter().enumerate() {
        let cells: Vec<String> = ensembles[m]
            .iter()
            .map(|a| format!("{:.1}", 100.0 * a))
            .collect();
        tp.row(name, &cells.iter().map(String::as_str).collect::<Vec<_>>());
    }
    println!();
    println!("paper shape: RDD(Single) dominates all single baselines at every budget;");
    println!("RDD(Ensemble) dominates Bagging/BANs, with Bagging closing in at 65–77/class.");
}
