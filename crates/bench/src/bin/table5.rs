//! Table 5 — RDD against deep GCN variants (JK-Net, ResGCN, DenseGCN).
//!
//! As in the paper, each deep architecture's layer count is tuned on the
//! validation set (we sweep 2–5 layers) and the best configuration's test
//! accuracy is reported.

use rdd_bench::{
    mean_std, model_configs, num_trials, paper, pct, preset, rdd_config, TablePrinter,
};
use rdd_core::RddTrainer;
use rdd_graph::Dataset;
use rdd_models::{
    train, DenseGcn, Gcn, GcnConfig, GraphContext, JkNet, Model, PredictorExt, ResGcn, TrainConfig,
};
use rdd_tensor::seeded_rng;

/// Train a deep model with 2..=5 layers, pick the layer count with the best
/// validation accuracy, return its test accuracy.
fn best_deep<F>(
    data: &Dataset,
    ctx: &GraphContext,
    train_cfg: &TrainConfig,
    width: usize,
    dropout: f32,
    seed: u64,
    build: F,
) -> f32
where
    F: Fn(&GraphContext, GcnConfig, &mut rand::rngs::StdRng) -> Box<dyn Model>,
{
    let mut best = (f32::NEG_INFINITY, 0.0f32);
    for layers in 2..=5usize {
        // `GcnConfig::deep(width, hidden_layers, …)`: `layers` counts
        // propagation steps, so hidden layers = layers − 1.
        let cfg = GcnConfig::deep(width, layers - 1, dropout);
        let mut rng = seeded_rng(seed);
        let mut model = build(ctx, cfg, &mut rng);
        let report = train(model.as_mut(), ctx, data, train_cfg, &mut rng, None);
        let test = data.test_accuracy(&model.as_ref().predictor(&ctx).predict());
        if report.best_val_acc > best.0 {
            best = (report.best_val_acc, test);
        }
    }
    best.1
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.is_empty() {
        vec!["cora", "citeseer", "pubmed", "nell"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let trials = num_trials();
    let methods = ["GCN", "JK-Net", "ResGCN", "DenseGCN", "RDD(Single)"];
    let mut measured = vec![vec![(0.0f32, 0.0f32); names.len()]; methods.len()];

    for (d, name) in names.iter().enumerate() {
        let cfg = preset(name);
        let (gcn_cfg, train_cfg) = model_configs(cfg.name);
        let mut accs = vec![Vec::with_capacity(trials); methods.len()];
        let data = cfg.generate();
        let ctx = GraphContext::new(&data);
        for t in 0..trials as u64 {
            let mut rng = seeded_rng(t);
            let mut gcn = Gcn::new(&ctx, gcn_cfg.clone(), &mut rng);
            train(&mut gcn, &ctx, &data, &train_cfg, &mut rng, None);
            accs[0].push(data.test_accuracy(&gcn.predictor(&ctx).predict()));

            // Match the plain GCN's width/dropout per dataset so depth is
            // the only variable (the paper tunes layer count the same way).
            let (w, dr) = (gcn_cfg.hidden[0], gcn_cfg.dropout);
            accs[1].push(best_deep(&data, &ctx, &train_cfg, w, dr, t, |c, cfg, r| {
                Box::new(JkNet::new(c, cfg, r))
            }));
            accs[2].push(best_deep(&data, &ctx, &train_cfg, w, dr, t, |c, cfg, r| {
                Box::new(ResGcn::new(c, cfg, r))
            }));
            accs[3].push(best_deep(&data, &ctx, &train_cfg, w, dr, t, |c, cfg, r| {
                Box::new(DenseGcn::new(c, cfg, r))
            }));

            let mut rdd_cfg = rdd_config(cfg.name);
            rdd_cfg.seed = t;
            accs[4].push(RddTrainer::new(rdd_cfg).run(&data).single_test_acc);
        }
        for (m, a) in accs.iter().enumerate() {
            measured[m][d] = mean_std(a);
        }
        eprintln!("[table5] finished {name}");
    }

    let paper_rows: [&[f32; 4]; 5] = [
        &paper::T5_GCN,
        &paper::T5_JKNET,
        &paper::T5_RESGCN,
        &paper::T5_DENSEGCN,
        &paper::T5_RDD_SINGLE,
    ];
    let paper_idx = |name: &str| match name {
        n if n.starts_with("cora") => 0,
        n if n.starts_with("citeseer") => 1,
        n if n.starts_with("pubmed") => 2,
        _ => 3,
    };

    println!("Table 5: deep GCN comparison, accuracy (%) — measured (paper), {trials} trials");
    let tp = TablePrinter::new(14, 13);
    tp.header("Models", &names);
    for (m, method) in methods.iter().enumerate() {
        let cells: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(d, n)| {
                format!(
                    "{} ({:.1})",
                    pct(measured[m][d].0),
                    paper_rows[m][paper_idx(n)]
                )
            })
            .collect();
        tp.row(
            method,
            &cells.iter().map(String::as_str).collect::<Vec<_>>(),
        );
    }
}
