//! End-to-end behavioural tests: the paper's headline claims, verified on a
//! small synthetic dataset with a reduced budget so the suite stays fast.

use rdd_baselines::{bagging, BansConfig};
use rdd_core::{Ablation, RddConfig, RddTrainer};
use rdd_graph::SynthConfig;
use rdd_models::{train, Gcn, GcnConfig, GraphContext, PredictorExt, TrainConfig};
use rdd_tensor::seeded_rng;

/// A slightly larger/harder dataset than `tiny` so the methods separate.
fn dataset() -> rdd_graph::Dataset {
    let mut cfg = SynthConfig::tiny();
    cfg.n = 900;
    cfg.num_classes = 4;
    cfg.num_features = 128;
    cfg.class_mixing = 0.3;
    cfg.feature_purity = 0.6;
    cfg.train_per_class = 6;
    cfg.val_size = 150;
    cfg.test_size = 300;
    cfg.generate()
}

fn fast_rdd(n_models: usize) -> RddConfig {
    let mut cfg = RddConfig::fast();
    cfg.num_base_models = n_models;
    cfg.train = TrainConfig {
        epochs: 120,
        patience: 30,
        min_epochs: 60,
        ..TrainConfig::fast()
    };
    cfg.gamma_epochs = 80;
    cfg.gamma_initial = 3.0;
    cfg.beta = 1.0;
    cfg
}

#[test]
fn rdd_improves_over_plain_gcn() {
    let data = dataset();
    let ctx = GraphContext::new(&data);
    let train_cfg = TrainConfig {
        epochs: 120,
        patience: 30,
        min_epochs: 60,
        ..TrainConfig::fast()
    };

    // Plain GCN mean over the same seeds RDD's base models use.
    let mut gcn_accs = Vec::new();
    for seed in 1..=3u64 {
        let mut rng = seeded_rng(seed);
        let mut gcn = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        train(&mut gcn, &ctx, &data, &train_cfg, &mut rng, None);
        gcn_accs.push(data.test_accuracy(&gcn.predictor(&ctx).predict()));
    }
    let gcn_mean = gcn_accs.iter().sum::<f32>() / gcn_accs.len() as f32;

    let mut cfg = fast_rdd(3);
    cfg.seed = 1;
    let out = RddTrainer::new(cfg).run(&data);

    // The headline claim, at reduced scale: the RDD ensemble beats the mean
    // plain GCN (paper: +4.3pp on Cora; we only require a positive gap
    // minus a small noise allowance).
    assert!(
        out.ensemble_test_acc > gcn_mean - 0.005,
        "RDD ensemble {:.3} should not trail mean GCN {gcn_mean:.3}",
        out.ensemble_test_acc
    );
}

#[test]
fn rdd_ensemble_not_worse_than_its_average_base_model() {
    let data = dataset();
    let mut cfg = fast_rdd(3);
    cfg.seed = 2;
    let out = RddTrainer::new(cfg).run(&data);
    assert!(
        out.ensemble_test_acc >= out.average_base_test_acc() - 0.01,
        "ensemble {:.3} below average base {:.3}",
        out.ensemble_test_acc,
        out.average_base_test_acc()
    );
}

#[test]
fn prefix_accuracies_end_at_final_ensemble() {
    let data = dataset();
    let mut cfg = fast_rdd(3);
    cfg.seed = 3;
    let out = RddTrainer::new(cfg).run(&data);
    assert_eq!(out.prefix_ensemble_test_accs.len(), 3);
    let last = *out.prefix_ensemble_test_accs.last().unwrap();
    assert!(
        (last - out.ensemble_test_acc).abs() < 1e-6,
        "prefix[last] {last} != ensemble {}",
        out.ensemble_test_acc
    );
}

#[test]
fn bagging_matches_its_own_invariants() {
    let data = dataset();
    let train_cfg = TrainConfig {
        epochs: 80,
        patience: 20,
        min_epochs: 40,
        ..TrainConfig::fast()
    };
    let out = bagging(&data, &GcnConfig::citation(), &train_cfg, 3, 9);
    assert_eq!(out.base_test_accs.len(), 3);
    assert_eq!(out.prefix_test_accs.len(), 3);
    assert!((out.prefix_test_accs[2] - out.ensemble_test_acc).abs() < 1e-6);
    // Soft-vote of identical-architecture models shouldn't collapse.
    assert!(out.ensemble_test_acc > 0.4);
    let _ = BansConfig::default();
}

#[test]
fn wkr_ablation_changes_predictions() {
    // Removing knowledge reliability must actually change the training
    // outcome (guards against the ablation switches being dead code).
    let data = dataset();
    let mut full = fast_rdd(2);
    full.seed = 4;
    let mut wkr = full.clone();
    wkr.ablation = Ablation::without_knowledge_reliability();
    let a = RddTrainer::new(full).run(&data);
    let b = RddTrainer::new(wkr).run(&data);
    assert_ne!(
        a.ensemble_pred, b.ensemble_pred,
        "WKR ablation produced identical predictions"
    );
}

#[test]
fn gamma_zero_and_beta_zero_reduce_to_bagging_dynamics() {
    // With L2 and Lreg disabled, every base model trains independently —
    // base model 0 of the ablated RDD must match base 0 of full RDD (same
    // seed, first model is always plain), and the run must still produce a
    // valid ensemble.
    let data = dataset();
    let mut cfg = fast_rdd(2);
    cfg.seed = 5;
    cfg.ablation = Ablation {
        use_l2: false,
        use_lreg: false,
        ..Ablation::default()
    };
    let out = RddTrainer::new(cfg).run(&data);
    assert_eq!(out.base_models.len(), 2);
    assert!(out.ensemble_test_acc > 0.4);
}
