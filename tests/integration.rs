//! Cross-crate integration tests: the pieces (graph substrate, autodiff,
//! models, reliability, ensemble) composed the way the experiments compose
//! them.

use std::rc::Rc;

use rdd_core::{compute_reliability, model_weight, Ensemble};
use rdd_graph::SynthConfig;
use rdd_models::{train, Gcn, GcnConfig, GraphContext, PredictorExt, TrainConfig};
use rdd_tensor::seeded_rng;

fn trained_gcn(seed: u64) -> (rdd_graph::Dataset, GraphContext, Gcn) {
    let data = SynthConfig::tiny().generate();
    let ctx = GraphContext::new(&data);
    let mut rng = seeded_rng(seed);
    let mut model = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    train(
        &mut model,
        &ctx,
        &data,
        &TrainConfig::fast(),
        &mut rng,
        None,
    );
    (data, ctx, model)
}

#[test]
fn reliability_sets_from_trained_models_are_consistent() {
    let (data, ctx, teacher) = trained_gcn(1);
    let (_, _, student) = {
        let mut rng = seeded_rng(2);
        let mut m = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        train(&mut m, &ctx, &data, &TrainConfig::fast(), &mut rng, None);
        (0, 0, m)
    };
    let teacher_proba = teacher.predictor(&ctx).proba();
    let student_proba = student.predictor(&ctx).proba();
    let mut is_labeled = vec![false; data.n()];
    for &i in &data.train_idx {
        is_labeled[i] = true;
    }
    let sets = compute_reliability(
        &teacher_proba,
        &student_proba,
        &data.labels,
        &is_labeled,
        0.4,
        &data.graph,
    );
    // Invariants:
    assert!(
        sets.num_reliable() > 0,
        "trained teacher should make some nodes reliable"
    );
    for &i in &sets.distill {
        assert!(sets.reliable[i], "V_b ⊆ V_r");
    }
    for &(a, b) in &sets.edges {
        assert!(
            sets.reliable[a as usize] && sets.reliable[b as usize],
            "E_r endpoints reliable"
        );
        assert!(data.graph.has_edge(a as usize, b as usize), "E_r ⊆ E");
    }
    // With two decently-trained models, most labeled nodes should be
    // reliable (the teacher classifies its own training data well).
    let labeled_reliable = data.train_idx.iter().filter(|&&i| sets.reliable[i]).count();
    assert!(
        labeled_reliable * 2 > data.train_idx.len(),
        "only {labeled_reliable}/{} labeled nodes reliable",
        data.train_idx.len()
    );
}

#[test]
fn ensemble_of_trained_models_beats_worst_member() {
    let data = SynthConfig::tiny().generate();
    let ctx = GraphContext::new(&data);
    let pagerank = data.graph.pagerank(0.85, 100, 1e-9);
    let mut ensemble = Ensemble::new();
    let mut accs = Vec::new();
    for seed in 0..3u64 {
        let mut rng = seeded_rng(seed);
        let mut m = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        train(&mut m, &ctx, &data, &TrainConfig::fast(), &mut rng, None);
        let logits = m.predictor(&ctx).logits();
        let proba = logits.softmax_rows();
        accs.push(data.test_accuracy(&proba.argmax_rows()));
        let alpha = model_weight(&proba, &pagerank);
        ensemble.push(proba, logits, alpha);
    }
    let ens_acc = data.test_accuracy(&ensemble.predict());
    let worst = accs.iter().cloned().fold(f32::INFINITY, f32::min);
    assert!(
        ens_acc >= worst - 1e-6,
        "ensemble {ens_acc} fell below its worst member {worst}"
    );
}

#[test]
fn pagerank_weighted_ensemble_weights_are_finite_positive() {
    let (data, ctx, model) = trained_gcn(3);
    let pagerank = data.graph.pagerank(0.85, 100, 1e-9);
    let proba = model.predictor(&ctx).proba();
    let w = model_weight(&proba, &pagerank);
    assert!(w.is_finite() && w > 0.0);
}

#[test]
fn deep_models_train_through_shared_trainer() {
    use rdd_models::{DenseGcn, JkNet, Model, ResGcn};
    let data = SynthConfig::tiny().generate();
    let ctx = GraphContext::new(&data);
    let cfg = TrainConfig {
        epochs: 30,
        patience: 30,
        min_epochs: 0,
        ..TrainConfig::fast()
    };
    let mut rng = seeded_rng(4);
    let mut models: Vec<Box<dyn Model>> = vec![
        Box::new(ResGcn::new(&ctx, GcnConfig::deep(8, 2, 0.5), &mut rng)),
        Box::new(DenseGcn::new(&ctx, GcnConfig::deep(8, 2, 0.5), &mut rng)),
        Box::new(JkNet::new(&ctx, GcnConfig::deep(8, 2, 0.5), &mut rng)),
    ];
    for model in &mut models {
        let report = train(model.as_mut(), &ctx, &data, &cfg, &mut rng, None);
        assert!(
            report.best_val_acc > 0.4,
            "{} failed to learn: val {}",
            model.name(),
            report.best_val_acc
        );
    }
}

#[test]
fn distillation_hook_reduces_student_teacher_disagreement() {
    // Train a teacher, then a student that mimics it everywhere with a
    // strong KD pull; the student should agree with the teacher on more
    // nodes than an independently trained model does.
    let (data, ctx, teacher) = trained_gcn(5);
    let teacher_logits = Rc::new(teacher.predictor(&ctx).logits());
    let teacher_pred = teacher_logits.argmax_rows();
    let all_nodes: Rc<Vec<usize>> = Rc::new((0..data.n()).collect());

    let agreement = |pred: &[usize]| {
        pred.iter()
            .zip(&teacher_pred)
            .filter(|(a, b)| a == b)
            .count() as f32
            / data.n() as f32
    };

    let mut rng = seeded_rng(6);
    let mut independent = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    train(
        &mut independent,
        &ctx,
        &data,
        &TrainConfig::fast(),
        &mut rng,
        None,
    );
    let indep_agree = agreement(&independent.predictor(&ctx).predict());

    let mut rng = seeded_rng(6);
    let mut student = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
    let mut hook = |tape: &mut rdd_tensor::Tape, logits: rdd_tensor::Var, _e: usize| {
        let l = tape.mse_rows(logits, Rc::clone(&teacher_logits), Rc::clone(&all_nodes));
        vec![(l, 5.0f32)]
    };
    train(
        &mut student,
        &ctx,
        &data,
        &TrainConfig::fast(),
        &mut rng,
        Some(&mut hook),
    );
    let student_agree = agreement(&student.predictor(&ctx).predict());

    assert!(
        student_agree > indep_agree,
        "KD student agreement {student_agree} should exceed independent {indep_agree}"
    );
}

#[test]
fn alternative_base_models_compose_with_rdd() {
    // GAT and GraphSAGE both plug into the self-boosting loop via the
    // model factory (the §5.3 extension path).
    use rdd_core::{RddConfig, RddTrainer};
    use rdd_models::{GatConfig, GraphSage, SageConfig};

    let data = SynthConfig::tiny().generate();
    let mut cfg = RddConfig::fast();
    cfg.num_base_models = 2;
    cfg.train.epochs = 40;
    cfg.train.min_epochs = 10;

    let gat_cfg = GatConfig {
        heads: 2,
        hidden_per_head: 8,
        dropout: 0.3,
        input_dropout: 0.3,
        leaky_slope: 0.2,
    };
    let gat_out = RddTrainer::new(cfg.clone())
        .with_base_model(move |ctx, rng| Box::new(rdd_models::Gat::new(ctx, gat_cfg.clone(), rng)))
        .run(&data);
    assert!(
        gat_out.ensemble_test_acc > 0.5,
        "RDD over GAT: {}",
        gat_out.ensemble_test_acc
    );

    let sage_out = RddTrainer::new(cfg)
        .with_base_model(|ctx, rng| Box::new(GraphSage::new(ctx, SageConfig::default(), rng)))
        .run(&data);
    assert!(
        sage_out.ensemble_test_acc > 0.5,
        "RDD over SAGE: {}",
        sage_out.ensemble_test_acc
    );
}

#[test]
fn checkpoint_roundtrip_preserves_rdd_base_model_quality() {
    use rdd_models::{load_into, save_checkpoint};

    let (data, ctx, model) = trained_gcn(42);
    let acc_before = data.test_accuracy(&model.predictor(&ctx).predict());
    let path = std::env::temp_dir().join(format!("rdd_integration_ckpt_{}", std::process::id()));
    save_checkpoint(&model, &path).expect("save");
    let mut fresh = {
        let mut rng = seeded_rng(777);
        Gcn::new(&ctx, GcnConfig::citation(), &mut rng)
    };
    load_into(&mut fresh, &path).expect("load");
    let acc_after = data.test_accuracy(&fresh.predictor(&ctx).predict());
    assert!(
        (acc_before - acc_after).abs() < 1e-6,
        "accuracy changed across checkpoint"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn metrics_agree_with_dataset_accuracy() {
    use rdd_models::ConfusionMatrix;

    let (data, ctx, model) = trained_gcn(43);
    let preds = model.predictor(&ctx).predict();
    let acc = data.test_accuracy(&preds);
    let cm = ConfusionMatrix::over(&data.labels, &preds, &data.test_idx, data.num_classes);
    assert!(
        (cm.accuracy() - acc).abs() < 1e-6,
        "confusion-matrix accuracy mismatch"
    );
    assert!(cm.macro_f1() > 0.0 && cm.macro_f1() <= 1.0);
}

#[test]
fn reliable_set_is_better_calibrated_population() {
    // The reliability_diagnostics claim as a hard invariant on a trained
    // pair: teacher accuracy restricted to V_r exceeds its overall
    // accuracy.
    use rdd_graph::accuracy_over;

    let (data, ctx, teacher) = trained_gcn(44);
    let (_, _, student) = trained_gcn(45);
    let teacher_proba = teacher.predictor(&ctx).proba();
    let student_proba = student.predictor(&ctx).proba();
    let mut is_labeled = vec![false; data.n()];
    for &i in &data.train_idx {
        is_labeled[i] = true;
    }
    let sets = compute_reliability(
        &teacher_proba,
        &student_proba,
        &data.labels,
        &is_labeled,
        0.4,
        &data.graph,
    );
    let teacher_pred = teacher_proba.argmax_rows();
    let all: Vec<usize> = (0..data.n()).collect();
    let reliable: Vec<usize> = (0..data.n()).filter(|&i| sets.reliable[i]).collect();
    let overall = accuracy_over(&data.labels, &teacher_pred, &all);
    let on_reliable = accuracy_over(&data.labels, &teacher_pred, &reliable);
    assert!(
        on_reliable > overall,
        "reliability failed to concentrate correct teacher outputs: {on_reliable} !> {overall}"
    );
}
