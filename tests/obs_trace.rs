//! Integration test: a fast RDD run with the trace sink enabled emits one
//! well-formed epoch record per epoch actually run, carrying the reliability
//! counts with `|V_b| <= |V_r|`, plus member/run records, a kernel snapshot
//! with hierarchical self-times (summing to at most the wall clock), the
//! per-span latency histograms and the span-parent edges behind them.
//!
//! Single `#[test]`: the recorder sink is process-global.

use rdd_core::{RddConfig, RddTrainer};
use rdd_graph::SynthConfig;
use rdd_obs::Json;

#[test]
fn fast_run_emits_well_formed_epoch_records() {
    let path = std::env::temp_dir().join(format!("rdd_obs_trace_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    rdd_obs::init_file(&path).expect("init trace sink");

    let dataset = SynthConfig::tiny().generate();
    let cfg = RddConfig::fast();
    let members = cfg.num_base_models;
    let outcome = RddTrainer::new(cfg).run(&dataset);

    let src = std::fs::read_to_string(&path).expect("trace file readable");
    // `validate` re-checks every schema rule, including |V_b| <= |V_r|.
    let summary = rdd_obs::validate(&src).expect("trace validates");

    assert_eq!(summary.members.len(), members);
    assert_eq!(summary.runs.len(), 1);
    assert!(!summary.kernels.is_empty(), "kernel snapshot missing");

    // Hierarchical spans: self-times never exceed totals per kernel, and
    // the self-time sum — the whole point of the hierarchy is that it
    // cannot double count — stays within the trace's wall clock.
    let self_total: f64 = summary.kernels.iter().map(|k| k.self_ms).sum();
    for k in &summary.kernels {
        assert!(
            k.self_ms <= k.total_ms + 1e-9,
            "{}: self_ms {} > total_ms {}",
            k.name,
            k.self_ms,
            k.total_ms
        );
    }
    assert!(
        self_total <= summary.wall_ms * 1.01 + 1.0,
        "kernel self-times ({self_total} ms) exceed wall clock ({} ms)",
        summary.wall_ms
    );

    // Every traced kernel carries a duration histogram whose count matches
    // its call count, and the trainer stages appear as span-parent edges.
    for k in &summary.kernels {
        let hist = summary
            .hists
            .iter()
            .find(|h| h.name == k.name)
            .unwrap_or_else(|| panic!("{}: no hist event", k.name));
        assert_eq!(
            hist.snapshot.count() as f64,
            k.calls,
            "{}: hist count disagrees with kernel calls",
            k.name
        );
    }
    assert!(
        summary
            .span_edges
            .iter()
            .any(|e| e.parent == "train.epoch" && e.calls > 0.0),
        "no span edge parented by train.epoch: {:?}",
        summary.span_edges
    );
    let run_acc = summary.runs[0]
        .get("ensemble_test_acc")
        .and_then(Json::as_f64)
        .expect("run record has ensemble_test_acc");
    assert!((run_acc - f64::from(outcome.ensemble_test_acc)).abs() < 1e-6);

    // One epoch record per epoch run, numbered 0..epochs_run, per member.
    for (t, member) in summary.members.iter().enumerate() {
        let epochs_run = member
            .get("epochs")
            .and_then(Json::as_f64)
            .expect("member record has epochs") as usize;
        let mut epochs: Vec<usize> = summary
            .epochs
            .iter()
            .filter(|e| e.get("member").and_then(Json::as_f64).map(|m| m as usize) == Some(t))
            .map(|e| e.get("epoch").and_then(Json::as_f64).expect("epoch number") as usize)
            .collect();
        epochs.sort_unstable();
        let expect: Vec<usize> = (0..epochs_run).collect();
        assert_eq!(
            epochs, expect,
            "member {t}: missing or duplicate epoch records"
        );
    }

    // Distillation members (t > 0) must carry the reliability extras.
    let distill_epochs: Vec<&Json> = summary
        .epochs
        .iter()
        .filter(|e| {
            e.get("member")
                .and_then(Json::as_f64)
                .map(|m| m as usize > 0)
                == Some(true)
        })
        .collect();
    assert!(!distill_epochs.is_empty());
    for e in &distill_epochs {
        let num = |k: &str| e.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
        assert!(num("v_r") >= 0.0, "v_r missing");
        assert!(num("e_r") >= 0.0, "e_r missing");
        assert!(num("gamma") >= 0.0, "gamma missing");
        assert!(num("v_b") <= num("v_r"), "V_b must be a subset of V_r: {e}");
        let alpha = e.get("alpha").and_then(Json::as_arr).expect("alpha array");
        assert!(!alpha.is_empty(), "distill epoch must list teacher alphas");
    }

    let _ = std::fs::remove_file(&path);
}
