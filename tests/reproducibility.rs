//! Determinism guarantees: every experiment in the harness is seeded, so
//! repeated runs must be bit-identical.

use rdd_baselines::lp::{predict as lp_predict, LpConfig};
use rdd_core::{RddConfig, RddTrainer};
use rdd_graph::SynthConfig;
use rdd_models::{train, Gcn, GcnConfig, GraphContext, PredictorExt, TrainConfig};
use rdd_tensor::seeded_rng;

#[test]
fn dataset_generation_is_reproducible() {
    let a = SynthConfig::tiny().generate();
    let b = SynthConfig::tiny().generate();
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.train_idx, b.train_idx);
    assert_eq!(a.val_idx, b.val_idx);
    assert_eq!(a.test_idx, b.test_idx);
    assert_eq!(a.graph.edges(), b.graph.edges());
    let ta: Vec<_> = a.features.iter().collect();
    let tb: Vec<_> = b.features.iter().collect();
    assert_eq!(ta, tb);
}

#[test]
fn gcn_training_is_reproducible() {
    let data = SynthConfig::tiny().generate();
    let ctx = GraphContext::new(&data);
    let run = || {
        let mut rng = seeded_rng(11);
        let mut m = Gcn::new(&ctx, GcnConfig::citation(), &mut rng);
        train(&mut m, &ctx, &data, &TrainConfig::fast(), &mut rng, None);
        m.predictor(&ctx).logits()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.as_slice(),
        b.as_slice(),
        "training diverged under the same seed"
    );
}

#[test]
fn rdd_outcome_is_reproducible() {
    let data = SynthConfig::tiny().generate();
    let mut cfg = RddConfig::fast();
    cfg.num_base_models = 2;
    cfg.train.epochs = 25;
    let a = RddTrainer::new(cfg.clone()).run(&data);
    let b = RddTrainer::new(cfg).run(&data);
    assert_eq!(a.ensemble_pred, b.ensemble_pred);
    assert_eq!(a.single_pred, b.single_pred);
    let aw: Vec<f32> = a.base_models.iter().map(|m| m.alpha).collect();
    let bw: Vec<f32> = b.base_models.iter().map(|m| m.alpha).collect();
    assert_eq!(aw, bw);
}

#[test]
fn label_propagation_is_deterministic() {
    let data = SynthConfig::tiny().generate();
    let a = lp_predict(&data, &LpConfig::default());
    let b = lp_predict(&data, &LpConfig::default());
    assert_eq!(a, b);
}

#[test]
fn thread_count_does_not_change_results() {
    // The scoped-thread kernels partition work deterministically; the
    // row-block split must not affect numerics. (RDD_THREADS is read once
    // per process, so this test exercises the default setting; the
    // invariant itself is that chunked and unchunked summation orders agree
    // per row, which holds because each output row is computed by exactly
    // one thread.)
    let data = SynthConfig::tiny().generate();
    let a_hat = data.graph.normalized_adjacency();
    let mut rng = seeded_rng(3);
    let h = rdd_tensor::uniform(data.n(), 16, 1.0, &mut rng);
    let r1 = a_hat.spmm(&h);
    let r2 = a_hat.spmm(&h);
    assert_eq!(r1.as_slice(), r2.as_slice());
}

#[test]
fn different_rdd_seeds_give_different_models() {
    let data = SynthConfig::tiny().generate();
    let mut cfg = RddConfig::fast();
    cfg.num_base_models = 1;
    cfg.train.epochs = 25;
    let a = RddTrainer::new(cfg.clone()).run(&data);
    cfg.seed = 999;
    let b = RddTrainer::new(cfg).run(&data);
    assert_ne!(
        a.single_pred, b.single_pred,
        "different seeds should not produce identical models"
    );
}
